"""CLI coverage for the capture-model flags and the compete subcommand."""

import pytest

from repro.cli import build_parser, main

BASE = ["--users", "120", "--candidates", "15", "--facilities", "20"]


class TestCaptureFlags:
    def test_defaults(self):
        args = build_parser().parse_args(["solve"])
        assert args.capture_model == "evenly-split"
        assert args.mnl_beta == 1.0
        assert args.worlds == 32
        assert args.world_seed == 0

    @pytest.mark.parametrize("model", ["huff", "mnl", "fixed-worlds"])
    def test_solve_with_each_model(self, model, capsys):
        code = main(
            ["solve", *BASE, "--k", "3", "--capture-model", model]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert f"capture: {model}" in out
        assert "cinf(G)" in out

    def test_unknown_model_lists_registry(self, capsys):
        code = main(["solve", *BASE, "--k", "2", "--capture-model", "nope"])
        err = capsys.readouterr().err
        assert code == 2
        assert "unknown capture model" in err
        for name in ("evenly-split", "huff", "mnl", "fixed-worlds"):
            assert name in err

    def test_compare_with_mnl_solvers_agree(self, capsys):
        code = main(
            [
                "compare", *BASE, "--k", "3", "--skip-baseline",
                "--capture-model", "mnl", "--mnl-beta", "2.0",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "capture: mnl" in out
        assert "NO" not in out.replace("NOT", "")

    def test_serve_with_capture(self, capsys):
        code = main(
            [
                "serve", *BASE, "--k-max", "2", "--taus", "0.7",
                "--repeat", "2", "--capture-model", "mnl",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "result_cache" in out


class TestCompete:
    def test_compete_prints_erosion_report(self, capsys):
        code = main(
            [
                "compete", *BASE, "--k", "3",
                "--capture-model", "fixed-worlds", "--worlds", "16",
                "--world-seed", "3",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "capture erosion" in out
        assert "rival best response" in out
        assert "leader (re-solved)" in out

    def test_compete_deterministic_per_world_seed(self, capsys):
        argv = [
            "compete", *BASE, "--k", "3",
            "--capture-model", "fixed-worlds", "--worlds", "16",
            "--world-seed", "5",
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert first == second

    def test_compete_k_rival(self, capsys):
        code = main(["compete", *BASE, "--k", "3", "--k-rival", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "k_rival = 1" in out
