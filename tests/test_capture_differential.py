"""Property-based differential suite for the capture subsystem.

Two pinned contracts:

* **Degenerate-case bit-identity** — evenly-split routed through the
  new :class:`~repro.capture.CaptureModel` contract produces *the same
  bits* (selections, per-round gains, objective, evaluation counters'
  observable outputs) as the legacy no-capture path, across solvers ×
  kernel knobs.  This is what makes the subsystem a refactor-safe
  extension point rather than a fork of the objective.
* **Set-aware sanity** — the vectorized CELF path agrees with the
  scalar reference oracle, and MNL greedy gains are monotone
  non-increasing per round (the submodularity CELF relies on).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import paper_default_pf
from repro.capture import (
    FixedWorldsCaptureModel,
    MNLCaptureModel,
    SiteUtilities,
    capture_select,
    evenly_split_capture,
)
from repro.competition import InfluenceTable
from repro.influence import InfluenceEvaluator
from repro.solvers import (
    AdaptedKCIFPSolver,
    BaselineGreedySolver,
    IQTSolver,
    MC2LSProblem,
    run_selection,
)
from repro.solvers.base import resolve_all_pairs
from tests.conftest import build_instance

SOLVER_FACTORIES = {
    "baseline": lambda fs, bv: BaselineGreedySolver(
        fast_select=fs, batch_verify=bv
    ),
    "k-cifp": lambda fs, bv: AdaptedKCIFPSolver(fast_select=fs),
    "iqt": lambda fs, bv: IQTSolver(fast_select=fs, batch_verify=bv),
}


def _table_for(dataset, tau=0.7):
    ev = InfluenceEvaluator(paper_default_pf(), tau)
    omega_c, f_o = resolve_all_pairs(dataset, ev)
    return InfluenceTable.from_mappings(omega_c, f_o), sorted(omega_c)


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10**6),
    k=st.integers(min_value=1, max_value=5),
    solver_name=st.sampled_from(sorted(SOLVER_FACTORIES)),
    fast_select=st.booleans(),
    batch_verify=st.booleans(),
)
def test_evenly_split_capture_bit_identical_to_legacy(
    seed, k, solver_name, fast_select, batch_verify
):
    dataset = build_instance(
        seed=seed, n_users=30, n_candidates=max(8, k + 3), n_facilities=6
    )
    solver = SOLVER_FACTORIES[solver_name](fast_select, batch_verify)
    legacy = solver.solve(MC2LSProblem(dataset, k=k, tau=0.7))
    via_capture = solver.solve(
        MC2LSProblem(dataset, k=k, tau=0.7, capture=evenly_split_capture())
    )
    assert via_capture.selected == legacy.selected
    assert via_capture.gains == legacy.gains
    assert via_capture.objective == legacy.objective


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10**6),
    k=st.integers(min_value=1, max_value=5),
    beta=st.floats(min_value=0.25, max_value=4.0),
)
def test_mnl_fast_matches_scalar_oracle_and_gains_decrease(seed, k, beta):
    dataset = build_instance(
        seed=seed, n_users=30, n_candidates=max(8, k + 3), n_facilities=6
    )
    table, cids = _table_for(dataset)
    model = MNLCaptureModel(SiteUtilities(dataset, paper_default_pf()), beta=beta)
    fast = capture_select(table, cids, k, model, fast=True)
    slow = capture_select(table, cids, k, model, fast=False)
    assert fast.selected == slow.selected
    assert fast.objective == pytest.approx(slow.objective, abs=1e-9)
    for a, b in zip(fast.gains, fast.gains[1:]):
        assert b <= a + 1e-12  # CELF precondition: non-increasing gains
    # CELF must evaluate no more than the rescan loop.
    assert fast.evaluations <= slow.evaluations


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10**6),
    k=st.integers(min_value=1, max_value=4),
    worlds=st.integers(min_value=1, max_value=64),
    world_seed=st.integers(min_value=0, max_value=2**32),
)
def test_fixed_worlds_fast_matches_scalar_oracle(seed, k, worlds, world_seed):
    dataset = build_instance(
        seed=seed, n_users=25, n_candidates=max(8, k + 3), n_facilities=5
    )
    table, cids = _table_for(dataset)
    model = FixedWorldsCaptureModel(
        SiteUtilities(dataset, paper_default_pf()),
        n_worlds=worlds,
        seed=world_seed,
    )
    fast = capture_select(table, cids, k, model, fast=True)
    slow = capture_select(table, cids, k, model, fast=False)
    assert fast.selected == slow.selected
    assert fast.objective == pytest.approx(slow.objective, abs=1e-9)
    for a, b in zip(fast.gains, fast.gains[1:]):
        assert b <= a + 1e-12


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10**6),
    k=st.integers(min_value=1, max_value=4),
    fast_select=st.booleans(),
)
def test_run_selection_capture_dispatch_matches_direct(seed, k, fast_select):
    """run_selection(capture=...) equals calling capture_select directly."""
    dataset = build_instance(seed=seed, n_users=25, n_candidates=8, n_facilities=5)
    table, cids = _table_for(dataset)
    model = MNLCaptureModel(SiteUtilities(dataset, paper_default_pf()), beta=2.0)
    via_dispatch = run_selection(
        table, cids, k, fast_select=fast_select, capture=model
    )
    direct = capture_select(table, cids, k, model, fast=fast_select)
    assert via_dispatch == direct


def test_evenly_split_capture_bit_identical_on_sharded_arrays():
    """Evenly-split through the capture contract densifies to the exact
    CSR weights the sharded kernels consume (weights are the seam the
    coordinator hardcodes)."""
    import numpy as np

    from repro.solvers.coverage import CoverageMatrix

    dataset = build_instance(seed=5, n_users=40, n_candidates=12, n_facilities=8)
    table, cids = _table_for(dataset)
    legacy = CoverageMatrix(table, cids)
    via = CoverageMatrix(table, cids, model=evenly_split_capture().weight_model)
    np.testing.assert_array_equal(legacy.weights, via.weights)
    np.testing.assert_array_equal(legacy.user_ids, via.user_ids)
    np.testing.assert_array_equal(legacy.indptr, via.indptr)
    np.testing.assert_array_equal(legacy.col, via.col)
