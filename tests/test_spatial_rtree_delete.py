"""Tests for R-tree deletion (Guttman's Delete + CondenseTree)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo import Point, Rect
from repro.spatial import RTree


def random_points(n, seed=0):
    rng = np.random.default_rng(seed)
    return [Point(float(x), float(y)) for x, y in rng.uniform(0, 100, size=(n, 2))]


def brute_force(points, alive, rect):
    return {i for i in alive if rect.contains_point(points[i])}


class TestDelete:
    def test_delete_existing(self):
        t = RTree(max_entries=4)
        points = random_points(30)
        for i, p in enumerate(points):
            t.insert_point(p, i)
        assert t.delete_point(points[7], 7)
        assert len(t) == 29
        assert 7 not in t.range_query(Rect(0, 0, 100, 100))

    def test_delete_missing_returns_false(self):
        t = RTree()
        t.insert_point(Point(1, 1), "a")
        assert not t.delete_point(Point(2, 2), "a")
        assert not t.delete_point(Point(1, 1), "b")
        assert len(t) == 1

    def test_delete_from_empty(self):
        assert not RTree().delete_point(Point(0, 0), "x")

    def test_delete_all_then_reuse(self):
        t = RTree(max_entries=4)
        points = random_points(50, seed=2)
        for i, p in enumerate(points):
            t.insert_point(p, i)
        for i, p in enumerate(points):
            assert t.delete_point(p, i)
        assert len(t) == 0
        assert t.range_query(Rect(0, 0, 100, 100)) == []
        # The tree must still accept inserts after total erasure.
        t.insert_point(Point(5, 5), "new")
        assert t.range_query(Rect(0, 0, 10, 10)) == ["new"]

    def test_duplicate_locations_delete_one(self):
        t = RTree(max_entries=4)
        for i in range(10):
            t.insert_point(Point(3, 3), i)
        assert t.delete_point(Point(3, 3), 4)
        remaining = set(t.range_query(Rect(0, 0, 10, 10)))
        assert remaining == set(range(10)) - {4}

    def test_queries_correct_after_mixed_workload(self):
        points = random_points(200, seed=5)
        t = RTree(max_entries=4)
        alive = set()
        for i, p in enumerate(points):
            t.insert_point(p, i)
            alive.add(i)
        rng = np.random.default_rng(9)
        for i in rng.choice(200, size=120, replace=False).tolist():
            assert t.delete_point(points[i], i)
            alive.discard(i)
        assert len(t) == len(alive)
        for rect in [Rect(0, 0, 100, 100), Rect(20, 20, 60, 60), Rect(90, 0, 100, 30)]:
            assert set(t.range_query(rect)) == brute_force(points, alive, rect)

    def test_structure_stays_valid_after_deletes(self):
        points = random_points(150, seed=7)
        t = RTree(max_entries=4)
        for i, p in enumerate(points):
            t.insert_point(p, i)
        rng = np.random.default_rng(1)
        for i in rng.choice(150, size=100, replace=False).tolist():
            t.delete_point(points[i], i)

        def check(node, is_root):
            if not is_root:
                assert self_min <= len(node.entries) <= t.max_entries
            if not node.is_leaf:
                for e in node.entries:
                    assert e.child.parent is node
                    assert e.rect.contains_rect(e.child.mbr())
                    check(e.child, False)

        self_min = t.min_entries
        check(t._root, True)

    def test_nearest_after_deletes(self):
        points = random_points(100, seed=3)
        t = RTree(max_entries=4)
        for i, p in enumerate(points):
            t.insert_point(p, i)
        removed = set(range(0, 100, 2))
        for i in removed:
            t.delete_point(points[i], i)
        q = Point(50, 50)
        alive = [i for i in range(100) if i not in removed]
        expected = min(alive, key=lambda i: q.distance_to(points[i]))
        assert t.nearest(q, k=1) == [expected]


@given(
    seed=st.integers(0, 300),
    n=st.integers(5, 60),
    delete_frac=st.floats(0.1, 0.9),
)
@settings(max_examples=30, deadline=None)
def test_property_delete_preserves_queries(seed, n, delete_frac):
    points = random_points(n, seed=seed)
    t = RTree(max_entries=4)
    for i, p in enumerate(points):
        t.insert_point(p, i)
    rng = np.random.default_rng(seed + 1)
    n_delete = int(n * delete_frac)
    alive = set(range(n))
    for i in rng.choice(n, size=n_delete, replace=False).tolist():
        assert t.delete_point(points[i], i)
        alive.discard(i)
    rect = Rect(10, 10, 70, 70)
    assert set(t.range_query(rect)) == brute_force(points, alive, rect)
    assert len(t) == len(alive)
