"""Tests for the time-aware extension (windows, timed users, solver)."""

import numpy as np
import pytest

from repro.entities import MovingUser, candidate, existing
from repro.exceptions import DataError, SolverError
from repro.influence import InfluenceEvaluator, paper_default_pf
from repro.solvers import greedy_select
from repro.temporal import (
    ALL_DAY,
    TimeAwareMC2LS,
    TimedInfluenceEvaluator,
    TimedUser,
    TimeWindow,
    attach_hours,
)

PF = paper_default_pf()


class TestTimeWindow:
    def test_plain_interval(self):
        w = TimeWindow(9, 17)
        assert w.duration == 8
        assert not w.wraps
        assert w.contains(9) and w.contains(16)
        assert not w.contains(17) and not w.contains(8)

    def test_wraparound(self):
        w = TimeWindow(22, 6)
        assert w.wraps
        assert w.duration == 8
        for hour in (22, 23, 0, 3, 5):
            assert w.contains(hour)
        for hour in (6, 12, 21):
            assert not w.contains(hour)

    def test_all_day(self):
        assert ALL_DAY.duration == 24
        assert all(ALL_DAY.contains(h) for h in range(24))

    def test_mask_matches_contains(self):
        w = TimeWindow(20, 4)
        hours = np.arange(24)
        mask = w.mask(hours)
        for h in range(24):
            assert mask[h] == w.contains(h)

    def test_validation(self):
        with pytest.raises(DataError):
            TimeWindow(-1, 5)
        with pytest.raises(DataError):
            TimeWindow(0, 0)
        with pytest.raises(DataError):
            TimeWindow(24, 5)

    def test_str(self):
        assert str(TimeWindow(9, 17)) == "09-17h"
        assert str(TimeWindow(0, 24)) == "00-00h"


class TestTimedUser:
    def test_construction_and_filtering(self):
        user = MovingUser(1, np.array([[0.0, 0.0], [1.0, 1.0], [2.0, 2.0]]))
        timed = TimedUser(user, np.array([8, 13, 20]))
        morning = timed.positions_in(TimeWindow(6, 10))
        assert morning.shape == (1, 2)
        assert (morning[0] == [0.0, 0.0]).all()
        assert timed.positions_in(ALL_DAY).shape == (3, 2)
        assert timed.positions_in(TimeWindow(1, 3)).shape == (0, 2)

    def test_validation(self):
        user = MovingUser(1, np.zeros((2, 2)))
        with pytest.raises(DataError):
            TimedUser(user, np.array([1]))  # wrong length
        with pytest.raises(DataError):
            TimedUser(user, np.array([1, 25]))  # out of range

    def test_hours_read_only(self):
        timed = TimedUser(MovingUser(1, np.zeros((2, 2))), np.array([1, 2]))
        with pytest.raises(ValueError):
            timed.hours[0] = 5

    def test_attach_hours(self):
        rng = np.random.default_rng(0)
        users = [MovingUser(uid, rng.uniform(0, 5, (8, 2))) for uid in range(10)]
        timed = attach_hours(users, seed=1)
        assert len(timed) == 10
        assert all(t.hours.shape == (8,) for t in timed)
        assert all(((t.hours >= 0) & (t.hours < 24)).all() for t in timed)


class TestTimedInfluence:
    def test_all_day_reduces_to_base_model(self):
        rng = np.random.default_rng(2)
        user = MovingUser(0, rng.uniform(0, 2, (10, 2)))
        timed = TimedUser(user, rng.integers(0, 24, 10))
        t_ev = TimedInfluenceEvaluator(PF, 0.6)
        base = InfluenceEvaluator(PF, 0.6)
        assert t_ev.influences(1.0, 1.0, timed, ALL_DAY) == base.influences(
            1.0, 1.0, user.positions
        )

    def test_window_restriction_weakens_influence(self):
        # All positions close, but only 2 fall in the window.
        user = MovingUser(0, np.zeros((10, 2)))
        timed = TimedUser(user, np.array([9] * 2 + [20] * 8))
        ev = TimedInfluenceEvaluator(PF, 0.9)
        assert not ev.influences(0.0, 0.0, timed, TimeWindow(8, 10))
        assert ev.influences(0.0, 0.0, timed, ALL_DAY)

    def test_no_positions_in_window(self):
        timed = TimedUser(MovingUser(0, np.zeros((3, 2))), np.array([12, 12, 12]))
        ev = TimedInfluenceEvaluator(PF, 0.1)
        assert not ev.influences(0.0, 0.0, timed, TimeWindow(0, 6))


def build_timed_instance(seed=0):
    """Morning crowd near (2,2), evening crowd near (8,8)."""
    rng = np.random.default_rng(seed)
    timed = []
    for uid in range(20):
        center, hour = ((2.0, 2.0), 9) if uid % 2 == 0 else ((8.0, 8.0), 20)
        positions = np.clip(rng.normal(center, 0.4, (6, 2)), 0, 10)
        hours = np.full(6, hour) + rng.integers(-1, 2, 6)
        timed.append(TimedUser(MovingUser(uid, positions), np.mod(hours, 24)))
    candidates = [candidate(0, 2.0, 2.0), candidate(1, 8.0, 8.0),
                  candidate(2, 5.0, 5.0)]
    facilities = [existing(0, 2.5, 2.5)]
    return timed, facilities, candidates


class TestTimeAwareSolver:
    def test_validation(self):
        timed, facs, cands = build_timed_instance()
        with pytest.raises(SolverError):
            TimeAwareMC2LS(timed, facs, cands, windows=[], k=1)
        with pytest.raises(SolverError):
            TimeAwareMC2LS(timed, facs, cands, windows=[ALL_DAY], k=9)

    def test_windows_match_demand_rhythm(self):
        """The solver opens the morning site in the morning window and the
        evening site in the evening window."""
        timed, facs, cands = build_timed_instance()
        solver = TimeAwareMC2LS(
            timed, facs, cands,
            windows=[TimeWindow(7, 12), TimeWindow(17, 23)],
            k=2, tau=0.5,
        )
        result = solver.solve()
        assert len(result.placements) == 2
        by_cid = {p.cid: p.window for p in result.placements}
        assert set(by_cid) == {0, 1}
        assert by_cid[0] == TimeWindow(7, 12)   # morning site
        assert by_cid[1] == TimeWindow(17, 23)  # evening site

    def test_at_most_one_window_per_site(self):
        timed, facs, cands = build_timed_instance()
        solver = TimeAwareMC2LS(
            timed, facs, cands,
            windows=[TimeWindow(7, 12), TimeWindow(8, 13), ALL_DAY],
            k=3, tau=0.5,
        )
        result = solver.solve()
        cids = [p.cid for p in result.placements]
        assert len(cids) == len(set(cids))

    def test_gains_non_increasing(self):
        timed, facs, cands = build_timed_instance(seed=3)
        solver = TimeAwareMC2LS(
            timed, facs, cands, windows=[TimeWindow(7, 12), TimeWindow(17, 23)],
            k=3, tau=0.5,
        )
        result = solver.solve()
        assert all(a >= b - 1e-12 for a, b in zip(result.gains, result.gains[1:]))

    def test_all_day_menu_reduces_to_base_greedy(self):
        """With the ALL_DAY-only menu the selection equals base MC²LS."""
        timed, facs, cands = build_timed_instance(seed=4)
        solver = TimeAwareMC2LS(
            timed, facs, cands, windows=[ALL_DAY], k=2, tau=0.5
        )
        result = solver.solve()
        table = solver.as_influence_table(ALL_DAY)
        base = greedy_select(table, [c.fid for c in cands], 2)
        assert tuple(p.cid for p in result.placements) == base.selected
        assert result.objective == pytest.approx(base.objective)

    def test_richer_menu_never_hurts(self):
        timed, facs, cands = build_timed_instance(seed=5)
        narrow = TimeAwareMC2LS(
            timed, facs, cands, windows=[TimeWindow(7, 12)], k=2, tau=0.5
        ).solve()
        rich = TimeAwareMC2LS(
            timed, facs, cands,
            windows=[TimeWindow(7, 12), TimeWindow(17, 23), ALL_DAY],
            k=2, tau=0.5,
        ).solve()
        assert rich.objective >= narrow.objective - 1e-9
