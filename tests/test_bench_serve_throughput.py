"""Smoke test: the serving-throughput benchmark must run and record.

Invokes ``benchmarks/bench_serve_throughput.py --smoke`` as a subprocess
and asserts the engine/direct identity check is green and the warm-cache
speedup clears the smoke floor.  The smoke run writes to a temporary
path so the committed full-scale ``BENCH_serve_throughput.json`` at the
repo root is not overwritten by test runs.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_smoke_records_trajectory_point(tmp_path):
    out_path = tmp_path / "BENCH_serve_throughput.json"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.run(
        [
            sys.executable,
            str(REPO_ROOT / "benchmarks" / "bench_serve_throughput.py"),
            "--smoke",
            "--out",
            str(out_path),
        ],
        capture_output=True,
        text=True,
        timeout=300,
        cwd=REPO_ROOT,
        env=env,
    )
    assert proc.returncode == 0, proc.stderr
    assert out_path.exists()
    payload = json.loads(out_path.read_text())
    assert payload["benchmark"] == "serve_throughput"
    assert payload["n_queries"] >= 8
    assert payload["results_identical"] is True
    assert payload["speedup_warm_1t"] >= 5.0


def test_committed_trajectory_point_is_full_scale():
    """The recorded repo-root point meets the acceptance floor."""
    payload = json.loads(
        (REPO_ROOT / "BENCH_serve_throughput.json").read_text()
    )
    assert payload["n_users"] >= 800
    assert payload["n_candidates"] >= 60
    assert payload["n_queries"] >= 16
    assert payload["results_identical"] is True
    assert payload["speedup_warm_1t"] >= 5.0
    assert payload["speedup_warm_4t"] >= 5.0
