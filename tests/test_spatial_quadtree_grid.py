"""Unit tests for the PR quad-tree and the uniform grid index."""

import numpy as np
import pytest

from repro.exceptions import IndexError_
from repro.geo import Point, Rect
from repro.spatial import GridIndex, QuadTree

REGION = Rect(0, 0, 100, 100)


def random_points(n, seed=0):
    rng = np.random.default_rng(seed)
    return [Point(float(x), float(y)) for x, y in rng.uniform(0, 100, size=(n, 2))]


def brute_force(points, rect):
    return {i for i, p in enumerate(points) if rect.contains_point(p)}


class TestQuadTree:
    def test_validation(self):
        with pytest.raises(IndexError_):
            QuadTree(REGION, capacity=0)
        with pytest.raises(IndexError_):
            QuadTree(REGION, max_depth=0)
        with pytest.raises(IndexError_):
            QuadTree(Rect(0, 0, 0, 5), capacity=4)

    def test_insert_outside_region_raises(self):
        qt = QuadTree(REGION)
        with pytest.raises(IndexError_):
            qt.insert(Point(200, 50))

    @pytest.mark.parametrize("n", [1, 20, 300])
    def test_range_matches_brute_force(self, n):
        points = random_points(n, seed=n)
        qt = QuadTree(REGION, capacity=8)
        for i, p in enumerate(points):
            qt.insert(p, i)
        assert len(qt) == n
        for rect in [Rect(0, 0, 100, 100), Rect(25, 25, 50, 75), Rect(99, 99, 100, 100)]:
            assert set(qt.range_query(rect)) == brute_force(points, rect)

    def test_splitting_occurs(self):
        qt = QuadTree(REGION, capacity=4)
        for i, p in enumerate(random_points(100, seed=1)):
            qt.insert(p, i)
        assert qt.leaf_count() > 1
        assert qt.depth() >= 1

    def test_duplicate_points_respect_max_depth(self):
        qt = QuadTree(REGION, capacity=2, max_depth=5)
        for i in range(50):
            qt.insert(Point(10.0, 10.0), i)
        assert len(qt) == 50
        assert qt.depth() <= 5
        assert set(qt.range_query(Rect(9, 9, 11, 11))) == set(range(50))

    def test_iter_range_returns_points(self):
        qt = QuadTree(REGION)
        qt.insert(Point(5, 5), "a")
        pairs = list(qt.iter_range(Rect(0, 0, 10, 10)))
        assert pairs == [(Point(5, 5), "a")]


class TestGridIndex:
    def test_validation(self):
        with pytest.raises(IndexError_):
            GridIndex(REGION, cell_size=0)
        with pytest.raises(IndexError_):
            GridIndex(Rect(0, 0, 0, 1), cell_size=1)

    def test_cell_addressing(self):
        g = GridIndex(REGION, cell_size=10)
        assert g.nx == 10 and g.ny == 10
        assert g.cell_of(0, 0) == (0, 0)
        assert g.cell_of(99.9, 99.9) == (9, 9)
        assert g.cell_of(100, 100) == (9, 9)  # boundary clamps
        assert g.cell_of(-5, 500) == (0, 9)  # outside clamps

    def test_cell_rect(self):
        g = GridIndex(REGION, cell_size=10)
        assert g.cell_rect(2, 3) == Rect(20, 30, 30, 40)

    @pytest.mark.parametrize("n", [1, 50, 400])
    def test_range_matches_brute_force(self, n):
        points = random_points(n, seed=n + 7)
        g = GridIndex(REGION, cell_size=7.3)
        for i, p in enumerate(points):
            g.insert(p, i)
        assert len(g) == n
        for rect in [Rect(0, 0, 100, 100), Rect(13, 47, 61, 55), Rect(0, 0, 0.5, 0.5)]:
            assert set(g.range_query(rect)) == brute_force(points, rect)

    def test_occupied_cells(self):
        g = GridIndex(REGION, cell_size=50)
        g.insert(Point(10, 10), 0)
        g.insert(Point(12, 12), 1)
        g.insert(Point(90, 90), 2)
        assert g.occupied_cells() == 2
