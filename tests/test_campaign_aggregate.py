"""Aggregation: stored points → bench-style row tables and reports."""

import pytest

from repro.campaign import (
    Aggregator,
    CampaignRunner,
    CampaignSpec,
    DatasetAxis,
    ResultStore,
    grid,
)

TINY = DatasetAxis(kind="C", users_frac=0.05, n_candidates=8,
                   n_facilities=16)


def _solver_spec():
    g = grid("g1", [TINY], solvers=("iqt", "iqt-c"), taus=(0.6, 0.7),
             ks=(2,), x="tau", repeats=2, title="Tiny tau sweep")
    return CampaignSpec(name="agg", grids=(g,))


@pytest.fixture(scope="module")
def completed(tmp_path_factory):
    """One executed campaign shared by the read-only aggregation tests."""
    store = ResultStore(tmp_path_factory.mktemp("agg") / "store")
    spec = _solver_spec()
    CampaignRunner(spec, store).run()
    return spec, store


class TestRows:
    def test_series_pivot_and_grouping(self, completed):
        spec, store = completed
        rows = Aggregator(spec, store).rows(spec.grids[0])
        # One row per tau; both solvers pivot into *_s columns.
        assert [row["tau"] for row in rows] == [0.6, 0.7]
        for row in rows:
            assert row["repeats"] == 2
            assert row["iqt_s"] > 0 and row["iqt-c_s"] > 0
            assert row["iqt_spread"] >= 0 and row["iqt-c_spread"] >= 0

    def test_solver_agreement_column(self, completed):
        """iqt and iqt-c are exact algorithms: selections must agree,
        and the aggregator surfaces that like the figure sweeps do."""
        spec, store = completed
        rows = Aggregator(spec, store).rows(spec.grids[0])
        assert all(row["agree"] == "yes" for row in rows)

    def test_partial_campaign_renders_partial_rows(self, completed,
                                                   tmp_path):
        spec, store = completed
        partial = ResultStore(tmp_path / "partial")
        keys = store.keys()
        for key in keys[:2]:
            partial.put(store.get(key))
        agg = Aggregator(spec, partial)
        assert 0 < len(agg.rows(spec.grids[0])) <= 2
        counts = agg.completion()["g1"]
        assert counts == {"total": 4, "complete": 2}
        assert len(agg.missing_keys()) == 2

    def test_empty_store_renders_no_rows(self, completed, tmp_path):
        spec, _ = completed
        agg = Aggregator(spec, ResultStore(tmp_path / "empty"))
        assert agg.rows(spec.grids[0]) == []
        assert agg.tables() == {"g1": []}


class TestCompeteRows:
    def test_capture_series_carries_erosion(self, tmp_path):
        g = grid("duel", [TINY], solvers=("iqt",), ks=(2,),
                 workload="compete", series="capture", x="k", repeats=2,
                 captures=({"model": "evenly-split"},
                           {"model": "mnl", "mnl_beta": 2.0}))
        spec = CampaignSpec(name="duel", grids=(g,))
        store = ResultStore(tmp_path / "store")
        assert CampaignRunner(spec, store).run().ok
        rows = Aggregator(spec, store).rows(g)
        assert len(rows) == 1
        row = rows[0]
        for series in ("evenly-split", "mnl"):
            assert row[f"{series}_s"] > 0
            assert f"{series}_erosion" in row
            assert f"{series}_recovered" in row


class TestReport:
    def test_report_writes_tables_and_svg(self, completed, tmp_path):
        spec, store = completed
        results_dir = tmp_path / "results"
        rendered = Aggregator(spec, store).report(
            results_dir=str(results_dir)
        )
        assert set(rendered) == {"g1"}
        assert "iqt_s" in rendered["g1"]
        written = {p.name for p in results_dir.iterdir()}
        assert any(name.endswith(".svg") for name in written)
        assert any("Tiny_tau_sweep" in name or "tau" in name.lower()
                   for name in written)

    def test_report_skips_empty_grids(self, completed, tmp_path):
        spec, _ = completed
        rendered = Aggregator(spec, ResultStore(tmp_path / "e")).report(
            results_dir=str(tmp_path / "results")
        )
        assert rendered == {}
