"""Tests for the social graph substrate and its generators."""

import numpy as np
import pytest

from repro.entities import MovingUser
from repro.exceptions import DataError
from repro.social import SocialGraph, geo_social_graph, scale_free_graph, small_world_graph


class TestSocialGraph:
    def test_basic_operations(self):
        g = SocialGraph([1, 2, 3])
        g.add_edge(1, 2)
        assert len(g) == 3
        assert g.n_edges == 1
        assert g.has_edge(2, 1)
        assert g.neighbors(1) == frozenset({2})
        assert g.degree(3) == 0
        assert 3 in g and 99 not in g

    def test_add_edge_creates_nodes(self):
        g = SocialGraph()
        g.add_edge(5, 7)
        assert set(g.nodes()) == {5, 7}

    def test_self_loop_rejected(self):
        g = SocialGraph()
        with pytest.raises(DataError):
            g.add_edge(1, 1)

    def test_duplicate_edge_idempotent(self):
        g = SocialGraph()
        g.add_edge(1, 2)
        g.add_edge(2, 1)
        assert g.n_edges == 1

    def test_edges_iteration_sorted_unique(self):
        g = SocialGraph()
        g.add_edge(3, 1)
        g.add_edge(2, 3)
        assert list(g.edges()) == [(1, 3), (2, 3)]

    def test_mean_degree(self):
        g = SocialGraph([1, 2, 3, 4])
        g.add_edge(1, 2)
        g.add_edge(3, 4)
        assert g.mean_degree() == pytest.approx(1.0)
        assert SocialGraph().mean_degree() == 0.0

    def test_networkx_roundtrip(self):
        g = SocialGraph()
        g.add_edge(1, 2)
        g.add_edge(2, 3)
        nx_graph = g.to_networkx()
        assert nx_graph.number_of_edges() == 2
        back = SocialGraph.from_networkx(nx_graph)
        assert list(back.edges()) == list(g.edges())

    def test_unknown_node_queries(self):
        g = SocialGraph([1])
        assert g.neighbors(42) == frozenset()
        assert g.degree(42) == 0
        assert not g.has_edge(42, 1)


class TestSmallWorld:
    def test_structure(self):
        nodes = list(range(50))
        g = small_world_graph(nodes, k=4, rewire_p=0.1, seed=1)
        assert len(g) == 50
        # WS keeps roughly n*k/2 edges (rewiring preserves the count up to
        # collisions).
        assert 80 <= g.n_edges <= 100
        assert 2 <= g.mean_degree() <= 5

    def test_no_rewiring_is_ring_lattice(self):
        g = small_world_graph(list(range(10)), k=2, rewire_p=0.0, seed=0)
        for i in range(10):
            assert g.has_edge(i, (i + 1) % 10)

    def test_validation(self):
        with pytest.raises(DataError):
            small_world_graph(list(range(10)), k=3)  # odd k
        with pytest.raises(DataError):
            small_world_graph(list(range(4)), k=6)  # too few nodes

    def test_deterministic(self):
        a = small_world_graph(list(range(30)), seed=7)
        b = small_world_graph(list(range(30)), seed=7)
        assert list(a.edges()) == list(b.edges())


class TestScaleFree:
    def test_degree_skew(self):
        g = scale_free_graph(list(range(200)), m=2, seed=3)
        degrees = sorted((g.degree(n) for n in g.nodes()), reverse=True)
        # Preferential attachment concentrates degree on early hubs.
        assert degrees[0] > 3 * (sum(degrees) / len(degrees))
        assert min(degrees) >= 2

    def test_edge_count(self):
        g = scale_free_graph(list(range(100)), m=3, seed=0)
        # Seed clique C(4,2)=6 edges + 96 * 3 new edges.
        assert g.n_edges == 6 + 96 * 3

    def test_validation(self):
        with pytest.raises(DataError):
            scale_free_graph([1, 2], m=3)


class TestGeoSocial:
    def make_users(self, n=60, seed=0):
        rng = np.random.default_rng(seed)
        return [
            MovingUser(uid, rng.normal(rng.uniform(0, 50, 2), 1.0, size=(5, 2)))
            for uid in range(n)
        ]

    def test_mean_degree_close_to_target(self):
        users = self.make_users(100)
        g = geo_social_graph(users, mean_degree=6.0, seed=1)
        assert 2.0 <= g.mean_degree() <= 10.0

    def test_friendship_distance_decay(self):
        users = self.make_users(150, seed=2)
        g = geo_social_graph(users, mean_degree=8.0, scale_km=5.0, seed=2)
        homes = {u.uid: u.positions.mean(axis=0) for u in users}
        edge_d = [
            float(np.linalg.norm(homes[a] - homes[b])) for a, b in g.edges()
        ]
        rng = np.random.default_rng(0)
        random_d = []
        uids = [u.uid for u in users]
        for _ in range(len(edge_d)):
            i, j = rng.choice(len(uids), size=2, replace=False)
            random_d.append(float(np.linalg.norm(homes[uids[i]] - homes[uids[j]])))
        assert np.mean(edge_d) < np.mean(random_d)

    def test_validation(self):
        with pytest.raises(DataError):
            geo_social_graph(self.make_users(1), mean_degree=5)
        with pytest.raises(DataError):
            geo_social_graph(self.make_users(10), mean_degree=0)
        with pytest.raises(DataError):
            geo_social_graph(self.make_users(10), scale_km=-1)
