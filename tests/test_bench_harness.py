"""Tests for the benchmark harness plumbing (reporting, dataset cache)."""

import os

import pytest

from repro.bench import clear_registry, format_table, record_table, registered_tables
from repro.bench.datasets import bench_users


class TestFormatTable:
    def test_empty(self):
        assert format_table([]) == "(no rows)"

    def test_alignment_and_order(self):
        rows = [
            {"name": "a", "value": 1.23456789, "count": 10},
            {"name": "long-name", "value": 0.5, "count": 2},
        ]
        text = format_table(rows)
        lines = text.splitlines()
        assert lines[0].split() == ["name", "value", "count"]
        assert set(lines[1]) <= {"-", " "}
        assert "1.235" in lines[2]  # 4 significant digits
        assert "long-name" in lines[3]

    def test_explicit_headers_subset(self):
        rows = [{"a": 1, "b": 2, "c": 3}]
        text = format_table(rows, headers=["c", "a"])
        assert text.splitlines()[0].split() == ["c", "a"]
        assert "2" not in text.splitlines()[2]

    def test_missing_keys_render_empty(self):
        rows = [{"a": 1}, {"a": 2, "b": 9}]
        text = format_table(rows, headers=["a", "b"])
        assert "9" in text


class TestRecordTable:
    def test_registry_and_persistence(self, tmp_path):
        clear_registry()
        rows = [{"x": 1, "y": 2.5}]
        rendered = record_table("My Table: test/1", rows, results_dir=tmp_path)
        assert "x" in rendered
        titles = [t for t, _ in registered_tables()]
        assert "My Table: test/1" in titles
        files = list(tmp_path.glob("*.txt"))
        assert len(files) == 1
        content = files[0].read_text()
        assert "My Table" in content and "2.5" in content
        clear_registry()
        assert registered_tables() == []

    def test_unwritable_results_dir_is_non_fatal(self):
        clear_registry()
        rendered = record_table(
            "t", [{"a": 1}], results_dir="/proc/definitely/not/writable"
        )
        assert "a" in rendered
        clear_registry()


class TestBenchUsers:
    def test_defaults(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_USERS_C", raising=False)
        monkeypatch.delenv("REPRO_BENCH_USERS_N", raising=False)
        assert bench_users("C") > bench_users("N")

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_USERS_C", "123")
        assert bench_users("C") == 123

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            bench_users("X")
