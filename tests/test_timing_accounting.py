"""Timing/accounting bugfix sweep of the serving layer.

Pins the satellite fixes:

* **one deadline clock** — ``CancelToken`` stamps ``started_at`` and the
  deadline from the same ``time.perf_counter()`` reading, a zero-second
  deadline trips ``expired()`` immediately (``>=``, not ``>``), and
  ``execute`` measures ``total_seconds`` from the token's
  ``started_at`` — submission time for scheduled queries — so queue wait
  counts against both the latency *and* the deadline;
* **expired queries are never served** — not even from a warm result
  cache: the token is checked before the cache lookup;
* **hit stats are fresh** — a result-cache hit reports its own
  ``total_seconds`` and zero work counters, and never aliases the cached
  entry's stats object;
* **sharded fallback accounting** — exactly one of ``capture_fallbacks``
  / ``fallbacks`` fires per degraded query, and coordinator respawns
  after a fleet break are reported separately as ``recoveries``.
"""

import time

import pytest

from repro.capture import CaptureSpec
from repro.exceptions import DeadlineExceededError, ShardError
from repro.service import CancelToken, SelectionEngine, SelectionQuery


@pytest.fixture
def engine(small_instance):
    eng = SelectionEngine(small_instance, max_workers=2)
    yield eng
    eng.shutdown()


# ----------------------------------------------------------------------
# CancelToken clock
# ----------------------------------------------------------------------
class TestTokenClock:
    def test_deadline_and_started_at_share_one_reading(self):
        token = CancelToken.with_timeout(5.0)
        assert token.deadline - token.started_at == pytest.approx(5.0)

    def test_zero_deadline_expires_immediately(self):
        token = CancelToken.with_timeout(0.0)
        assert token.expired()
        with pytest.raises(DeadlineExceededError):
            token.check()

    def test_no_deadline_never_expires(self):
        token = CancelToken.with_timeout(None)
        assert not token.expired()
        token.check()

    def test_started_at_override_is_kept(self):
        now = time.perf_counter()
        token = CancelToken(deadline=now + 1.0, started_at=now)
        assert token.started_at == now


# ----------------------------------------------------------------------
# execute() measures from the token's clock
# ----------------------------------------------------------------------
class TestExecuteClock:
    def test_total_seconds_measured_from_token_creation(self, engine):
        """A token created before ``execute`` (the submit path's shape)
        contributes its age to ``total_seconds`` — queue wait counts."""
        token = CancelToken.with_timeout(None)
        time.sleep(0.05)
        result = engine.execute(SelectionQuery(k=2, tau=0.6), cancel=token)
        assert result.stats.total_seconds >= 0.05

    def test_submitted_query_total_includes_queue_wait(self, small_instance):
        """With one worker pinned by a slow query, the queued query's
        ``total_seconds`` spans its wait, not just its solve."""
        eng = SelectionEngine(small_instance, max_workers=1)
        try:
            slow = eng.submit(SelectionQuery(k=6, tau=0.55, use_cache=False))
            fast = eng.submit(SelectionQuery(k=1, tau=0.7, use_cache=False))
            slow_result = slow.result(30.0)
            fast_result = fast.result(30.0)
        finally:
            eng.shutdown()
        # The queued query waited for the whole slow solve first.
        assert fast_result.stats.total_seconds >= (
            slow_result.stats.select_seconds
        )

    def test_zero_deadline_rejected_even_on_warm_cache(self, engine):
        query = SelectionQuery(k=2, tau=0.6)
        engine.execute(query)  # warm the result cache
        with pytest.raises(DeadlineExceededError):
            engine.execute(SelectionQuery(k=2, tau=0.6, deadline_s=0.0))
        # The warm entry is still served to unconstrained callers.
        assert engine.execute(query).stats.result_cache == "hit"


# ----------------------------------------------------------------------
# Hit-path stats freshness
# ----------------------------------------------------------------------
class TestHitStats:
    def test_hit_reports_its_own_latency_and_zero_work(self, engine):
        query = SelectionQuery(k=3, tau=0.6)
        miss = engine.execute(query)
        hit = engine.execute(query)
        assert miss.stats.result_cache == "miss"
        assert hit.stats.result_cache == "hit"
        assert hit.stats.prepared_cache == "skip"
        assert hit.stats.evaluations == 0
        assert hit.stats.positions_touched == 0
        assert hit.stats.selection_evaluations == 0
        assert hit.stats.prepare_seconds == 0.0
        assert hit.stats.select_seconds == 0.0
        assert 0 < hit.stats.total_seconds < miss.stats.total_seconds

    def test_hit_stats_never_alias_the_cached_entry(self, engine):
        query = SelectionQuery(k=3, tau=0.6)
        miss = engine.execute(query)
        first_hit = engine.execute(query)
        second_hit = engine.execute(query)
        assert first_hit.stats is not miss.stats
        assert first_hit.stats is not second_hit.stats
        # The cached entry's own record still says what the solve cost.
        assert engine.execute(query).stats.result_cache == "hit"
        assert miss.stats.result_cache == "miss"
        assert miss.stats.evaluations > 0

    def test_hit_payload_matches_cached_result(self, engine):
        query = SelectionQuery(k=3, tau=0.6)
        miss = engine.execute(query)
        hit = engine.execute(query)
        assert hit.selected == miss.selected
        assert hit.objective == miss.objective
        assert hit.gains == miss.gains


# ----------------------------------------------------------------------
# Sharded fallback / recovery accounting
# ----------------------------------------------------------------------
class TestShardedAccounting:
    def test_capture_fallback_fires_exactly_one_counter(self, small_instance):
        eng = SelectionEngine(
            small_instance, execution="sharded", shard_workers=2
        )
        try:
            eng.execute(
                SelectionQuery(
                    k=2, tau=0.6, capture=CaptureSpec(model="mnl")
                )
            )
            sharded = eng.stats()["sharded"]
        finally:
            eng.shutdown()
        assert sharded["capture_fallbacks"] == 1
        assert sharded["fallbacks"] == 0
        assert sharded["queries"] == 0  # never reached the fleet

    def test_stats_reports_recoveries_distinctly(self, small_instance):
        eng = SelectionEngine(
            small_instance, execution="sharded", shard_workers=2
        )
        try:
            sharded = eng.stats()["sharded"]
            assert sharded["recoveries"] == 0
            assert "fallbacks" in sharded and "capture_fallbacks" in sharded
        finally:
            eng.shutdown()

    def test_fleet_break_then_respawn_counts_one_recovery(self, small_instance):
        eng = SelectionEngine(
            small_instance, execution="sharded", shard_workers=2
        )
        try:
            eng.execute(SelectionQuery(k=2))
            coord = eng._coordinator
            assert coord is not None
            for worker in coord._workers:
                worker.process.kill()
                worker.process.join(timeout=5.0)
            with pytest.raises(ShardError):
                eng.execute(SelectionQuery(k=3, use_cache=False))
            sharded = eng.stats()["sharded"]
            assert sharded["failures"] == 1
            assert sharded["recoveries"] == 0  # not respawned yet
            # Next query respawns the fleet and still serves sharded:
            # a recovery, not a fallback.
            result = eng.execute(SelectionQuery(k=2, use_cache=False))
            assert result.selected
            sharded = eng.stats()["sharded"]
            assert sharded["recoveries"] == 1
            assert sharded["fallbacks"] == 0
            assert sharded["capture_fallbacks"] == 0
        finally:
            eng.shutdown()
