"""Smoke test: the sharded-selection benchmark must run and record.

Invokes ``benchmarks/bench_sharded_select.py --smoke`` the way CI does
(as a subprocess) and asserts the sharded/single-process identity checks
are green.  No speedup floor is asserted here: the smoke scale is tiny
and worker processes time-slice however many cores the host exposes —
identity is the invariant, the committed full-scale point carries the
timings.  The smoke run writes to a temporary path so the committed
``BENCH_sharded_select.json`` at the repo root is not overwritten.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_smoke_records_trajectory_point(tmp_path):
    out_path = tmp_path / "BENCH_sharded_select.json"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.run(
        [
            sys.executable,
            str(REPO_ROOT / "benchmarks" / "bench_sharded_select.py"),
            "--smoke",
            "--out",
            str(out_path),
        ],
        capture_output=True,
        text=True,
        timeout=600,
        cwd=REPO_ROOT,
        env=env,
    )
    assert proc.returncode == 0, proc.stderr
    assert out_path.exists()
    payload = json.loads(out_path.read_text())
    assert payload["benchmark"] == "sharded_select"
    assert payload["n_users"] >= 2000
    assert payload["cpu_count"] >= 1
    assert payload["results_identical"] is True
    for record in payload["workers"].values():
        assert record["selections_equal"] is True
        assert record["gains_equal"] is True
        assert record["objective_equal"] is True
        assert record["stats_equal"] is True
        assert record["prepare"]["repeats"] >= 2
        assert record["select"]["repeats"] >= 2


def test_committed_trajectory_point_is_full_scale():
    """The recorded repo-root point meets the acceptance floor."""
    payload = json.loads((REPO_ROOT / "BENCH_sharded_select.json").read_text())
    assert payload["n_users"] >= 500_000
    assert payload["worker_counts"] == [1, 2, 4]
    assert payload["results_identical"] is True
    assert "cpu_count" in payload
    for record in payload["workers"].values():
        assert record["prepare"]["repeats"] >= 2
        assert record["select"]["repeats"] >= 2
