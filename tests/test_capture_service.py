"""Serving-engine behaviour under pluggable capture models.

Covers the cache-key seam (capture joins the base key; the default spec
shares the legacy key), sharded degradation (set-aware queries fall back
with a counter, never wrong answers), and the streaming-republish guard
(non-default prepared instances refuse delta-patching and land in the
``patch_failed`` accounting).
"""

import pytest

from repro import paper_default_pf
from repro.capture import CaptureSpec, MNLCaptureModel, SiteUtilities
from repro.entities import MovingUser
from repro.service import SelectionEngine, SelectionQuery
from repro.solvers import IQTSolver, MC2LSProblem
from repro.streaming import StreamingMC2LS
from tests.conftest import build_instance


@pytest.fixture()
def dataset():
    return build_instance(seed=9, n_users=45, n_candidates=12, n_facilities=7)


class TestCacheKeys:
    def test_capture_key_separates_results(self, dataset):
        with SelectionEngine(dataset) as engine:
            default = engine.execute(SelectionQuery(k=3))
            mnl = engine.execute(
                SelectionQuery(k=3, capture=CaptureSpec(model="mnl", mnl_beta=2.0))
            )
            assert mnl.stats.result_cache == "miss"
            # Different betas are different keys.
            mnl_b3 = engine.execute(
                SelectionQuery(k=3, capture=CaptureSpec(model="mnl", mnl_beta=3.0))
            )
            assert mnl_b3.stats.result_cache == "miss"
            again = engine.execute(
                SelectionQuery(k=3, capture=CaptureSpec(model="mnl", mnl_beta=2.0))
            )
            assert again.stats.result_cache == "hit"
            assert again.selected == mnl.selected
            assert default.selected is not None

    def test_default_spec_shares_legacy_key(self, dataset):
        with SelectionEngine(dataset) as engine:
            engine.execute(SelectionQuery(k=3))
            explicit = engine.execute(
                SelectionQuery(k=3, capture=CaptureSpec(model="evenly-split"))
            )
            assert explicit.stats.result_cache == "hit"

    def test_world_seed_is_part_of_the_key(self, dataset):
        with SelectionEngine(dataset) as engine:
            a = engine.execute(
                SelectionQuery(
                    k=3,
                    capture=CaptureSpec(model="fixed-worlds", worlds=8, world_seed=1),
                )
            )
            b = engine.execute(
                SelectionQuery(
                    k=3,
                    capture=CaptureSpec(model="fixed-worlds", worlds=8, world_seed=2),
                )
            )
            assert b.stats.result_cache == "miss"
            again = engine.execute(
                SelectionQuery(
                    k=3,
                    capture=CaptureSpec(model="fixed-worlds", worlds=8, world_seed=1),
                )
            )
            assert again.stats.result_cache == "hit"
            assert again.selected == a.selected


class TestBitIdentityWithDirectSolve:
    def test_mnl_engine_matches_direct_solver(self, dataset):
        pf = paper_default_pf()
        model = MNLCaptureModel(SiteUtilities(dataset, pf), beta=2.0)
        direct = IQTSolver().solve(
            MC2LSProblem(dataset, k=4, tau=0.7, pf=pf, capture=model)
        )
        with SelectionEngine(dataset) as engine:
            served = engine.execute(
                SelectionQuery(
                    k=4, pf=pf, capture=CaptureSpec(model="mnl", mnl_beta=2.0)
                )
            )
        assert served.selected == direct.selected
        assert served.objective == direct.objective
        assert served.gains == direct.gains

    def test_candidate_mask_and_scalar_kernel(self, dataset):
        spec = CaptureSpec(model="mnl", mnl_beta=1.5)
        mask = tuple(range(0, 8))
        with SelectionEngine(dataset) as engine:
            fast = engine.execute(
                SelectionQuery(k=3, capture=spec, candidate_ids=mask)
            )
            slow = engine.execute(
                SelectionQuery(
                    k=3,
                    capture=spec,
                    candidate_ids=mask,
                    fast_select=False,
                    use_cache=False,
                )
            )
        assert fast.selected == slow.selected
        assert set(fast.selected) <= set(mask)


class TestShardedDegradation:
    def test_set_aware_falls_back_with_counter(self, dataset):
        with SelectionEngine(
            dataset, execution="sharded", shard_workers=2
        ) as engine:
            threaded_ref = IQTSolver().solve(
                MC2LSProblem(
                    dataset,
                    k=3,
                    tau=0.7,
                    capture=MNLCaptureModel(
                        SiteUtilities(dataset, paper_default_pf()), beta=2.0
                    ),
                )
            )
            served = engine.execute(
                SelectionQuery(k=3, capture=CaptureSpec(model="mnl", mnl_beta=2.0))
            )
            stats = engine.stats()["sharded"]
            assert stats["capture_fallbacks"] == 1
            assert stats["capture_supported"] == ["evenly-split"]
            assert served.selected == threaded_ref.selected

    def test_default_capture_does_not_fall_back(self, dataset):
        with SelectionEngine(
            dataset, execution="sharded", shard_workers=2
        ) as engine:
            engine.execute(SelectionQuery(k=3))
            assert engine.stats()["sharded"]["capture_fallbacks"] == 0


class TestStreamingRepublish:
    def _churned(self, session, seed=0):
        import numpy as np

        rng = np.random.default_rng(seed)
        uids = sorted(session._users)[:3]
        for uid in uids:
            user = session._users[uid]
            session.update_user(
                MovingUser(uid, user.positions + rng.normal(0, 0.4, user.positions.shape))
            )

    def test_non_default_prepared_instances_fail_patching(self, dataset):
        session = StreamingMC2LS.from_dataset(dataset, k=3, tau=0.7)
        with SelectionEngine(session.snapshot()) as engine:
            spec = CaptureSpec(model="mnl", mnl_beta=2.0)
            engine.execute(SelectionQuery(k=3, capture=spec))
            self._churned(session)
            engine.publish(session.snapshot())
            inc = engine.stats()["incremental"]
            assert inc["failed"] >= 1
            # Service continues correctly on the new population.
            after = engine.execute(SelectionQuery(k=3, capture=spec))
            assert after.stats.result_cache == "miss"
            assert len(after.selected) == 3

    def test_default_prepared_instances_still_patch(self, dataset):
        session = StreamingMC2LS.from_dataset(dataset, k=3, tau=0.7)
        with SelectionEngine(session.snapshot()) as engine:
            engine.execute(SelectionQuery(k=3))
            self._churned(session)
            engine.publish(session.snapshot())
            inc = engine.stats()["incremental"]
            assert inc["patched"] >= 1
            assert inc["failed"] == 0
