"""Tests for FM sketches and the sketch-based coverage greedy."""

import statistics

import numpy as np
import pytest

from repro.competition import InfluenceTable
from repro.exceptions import DataError, SolverError
from repro.sketches import FMSketch, exact_coverage_greedy, sketched_coverage_greedy
from repro.solvers import IQTSolver, MC2LSProblem
from tests.conftest import build_instance


class TestFMSketch:
    def test_validation(self):
        with pytest.raises(DataError):
            FMSketch(n_registers=0)
        with pytest.raises(DataError):
            FMSketch(n_registers=48)  # not a power of two

    def test_empty_estimates_zero(self):
        assert FMSketch().estimate() == 0.0

    def test_idempotent_inserts(self):
        a = FMSketch(64, seed=1)
        b = FMSketch(64, seed=1)
        a.add_many([1, 2, 3])
        b.add_many([1, 2, 3, 1, 2, 3, 3, 3])
        assert a.estimate() == b.estimate()

    @pytest.mark.parametrize("true_n", [100, 1000, 10000])
    def test_estimate_accuracy(self, true_n):
        """Mean relative error across seeds within the LogLog bound."""
        estimates = [
            FMSketch.of(range(true_n), 64, seed).estimate() for seed in range(25)
        ]
        ratio = statistics.mean(estimates) / true_n
        assert 0.8 <= ratio <= 1.25

    def test_more_registers_tighter(self):
        true_n = 5000
        def spread(m):
            vals = [FMSketch.of(range(true_n), m, s).estimate() for s in range(25)]
            return statistics.pstdev(vals) / true_n
        assert spread(256) < spread(16)

    def test_union_equals_sketch_of_union(self):
        rng = np.random.default_rng(0)
        a_items = set(rng.integers(0, 10_000, 500).tolist())
        b_items = set(rng.integers(5_000, 15_000, 500).tolist())
        a = FMSketch.of(a_items, 128, seed=3)
        b = FMSketch.of(b_items, 128, seed=3)
        direct = FMSketch.of(a_items | b_items, 128, seed=3)
        assert a.union(b).estimate() == direct.estimate()

    def test_union_update_matches_union(self):
        a = FMSketch.of(range(100), 64, 0)
        b = FMSketch.of(range(50, 200), 64, 0)
        combined = a.union(b)
        a.union_update(b)
        assert a.estimate() == combined.estimate()

    def test_incompatible_union_rejected(self):
        with pytest.raises(DataError):
            FMSketch(64, 0).union(FMSketch(128, 0))
        with pytest.raises(DataError):
            FMSketch(64, 0).union(FMSketch(64, 1))

    def test_copy_is_independent(self):
        a = FMSketch.of(range(100), 64, 0)
        b = a.copy()
        b.add_many(range(100, 5000))
        assert a.estimate() < b.estimate()

    def test_monotone_under_union(self):
        a = FMSketch.of(range(200), 64, 2)
        b = FMSketch.of(range(150, 400), 64, 2)
        assert a.union(b).estimate() >= max(a.estimate(), b.estimate())


class TestFMSketchBoundaries:
    """Regression tests for empty / sparse register (−1 sentinel) handling."""

    def test_empty_sketch_estimates_zero_any_register_count(self):
        for m in (1, 16, 64, 1024):
            sketch = FMSketch(m)
            assert sketch.is_empty
            assert sketch.estimate() == 0.0

    def test_single_item_estimates_about_one(self):
        # One insert occupies one register; a 2^mean over the untouched
        # -1 registers must not leak into the estimate.
        for seed in range(10):
            sketch = FMSketch(64, seed=seed)
            sketch.add(12345)
            assert not sketch.is_empty
            assert 0.5 <= sketch.estimate() <= 3.0

    def test_single_item_high_rank_not_garbage(self):
        # Force a pathologically high rank into a tiny sparse sketch: the
        # mostly-empty guard must keep the estimate near the occupancy
        # count instead of reporting 2^rank-scale garbage.
        sketch = FMSketch(n_registers=4)
        sketch._registers[0] = 60
        assert sketch.estimate() < 10.0

    def test_union_of_empties_is_empty(self):
        merged = FMSketch(64, 1).union(FMSketch(64, 1))
        assert merged.is_empty
        assert merged.estimate() == 0.0

    def test_union_with_empty_is_identity(self):
        a = FMSketch.of(range(500), 128, 7)
        merged = a.union(FMSketch(128, 7))
        assert merged.estimate() == a.estimate()

    def test_merged_disjoint_sketches(self):
        a = FMSketch.of(range(0, 2000), 256, 5)
        b = FMSketch.of(range(2000, 4000), 256, 5)
        merged = a.union(b)
        # Union-by-max of disjoint sets estimates the combined cardinality.
        assert merged.estimate() >= max(a.estimate(), b.estimate())
        assert merged.estimate() == pytest.approx(4000, rel=0.35)
        # And equals the sketch built from the union directly.
        direct = FMSketch.of(range(4000), 256, 5)
        assert merged.estimate() == direct.estimate()


class TestSketchedGreedy:
    def random_table(self, seed, n_c=20, n_u=400):
        rng = np.random.default_rng(seed)
        omega = {
            cid: set(rng.choice(n_u, size=int(rng.integers(5, n_u // 3)),
                                replace=False).tolist())
            for cid in range(n_c)
        }
        return InfluenceTable.from_mappings(omega, {})

    def test_validation(self):
        t = self.random_table(0)
        with pytest.raises(SolverError):
            sketched_coverage_greedy(t, list(range(20)), k=0)
        with pytest.raises(SolverError):
            exact_coverage_greedy(t, [1], k=2)

    @pytest.mark.parametrize("seed", range(4))
    def test_close_to_exact_greedy(self, seed):
        """The sketched selection's true coverage is within 10 % of exact."""
        t = self.random_table(seed)
        exact_sel, exact_cov = exact_coverage_greedy(t, list(range(20)), k=5)
        sketched = sketched_coverage_greedy(t, list(range(20)), k=5,
                                            n_registers=256, seed=seed)
        assert sketched.exact_coverage >= 0.9 * exact_cov

    def test_estimate_tracks_truth(self):
        t = self.random_table(7)
        out = sketched_coverage_greedy(t, list(range(20)), k=6, n_registers=512)
        assert out.estimated_coverage == pytest.approx(
            out.exact_coverage, rel=0.25
        )

    def test_deterministic(self):
        t = self.random_table(9)
        a = sketched_coverage_greedy(t, list(range(20)), k=4, seed=5)
        b = sketched_coverage_greedy(t, list(range(20)), k=4, seed=5)
        assert a.selected == b.selected

    def test_on_solver_table(self, small_instance):
        result = IQTSolver().solve(MC2LSProblem(small_instance, k=3, tau=0.5))
        cids = [c.fid for c in small_instance.candidates]
        out = sketched_coverage_greedy(result.table, cids, k=3)
        assert len(out.selected) == 3
        assert out.exact_coverage >= 1


class TestSentinelRegression:
    """Pinned instance where the pre-fix ``-1.0`` sentinel crashed.

    Four near-identical coverage sets with m=16 registers and seed 44:
    round 0 ties at the linear-counting estimate 16·ln(16) ≈ 44.36 (one
    register still empty — the correction side of the estimator's branch
    boundary), but every remaining candidate's union fills that last
    register, switching the estimator to the raw LogLog branch at
    ≈ 42.73.  Every round-1 gain is then ≈ −1.63 ≤ −1.0, below the old
    sentinel, so no candidate was ever picked and the selection crashed.
    """

    BASE = [
        0, 1, 2, 5, 6, 7, 8, 9, 11, 12, 14, 17, 18, 21, 22, 24, 25, 26,
        28, 30, 31, 32, 33, 34, 37, 39, 40, 42, 43, 44, 45, 46, 47, 48,
        49, 50, 51, 52, 53, 56, 59, 60, 63, 65, 68, 69,
    ]
    M = 16
    SEED = 44

    def pinned_table(self):
        base = set(self.BASE)
        omega = {
            0: base - {25, 46, 59},
            1: set(base),
            2: set(base),
            3: (base | {19}) - {40, 47},
        }
        f_o = {uid: set() for uid in base | {19}}
        return InfluenceTable.from_mappings(omega, f_o)

    def test_instance_triggers_negative_gains(self):
        """The pinned sets genuinely reproduce the old crash condition."""
        table = self.pinned_table()
        after_round0 = FMSketch.of(table.omega_c[0], self.M, self.SEED)
        current = after_round0.estimate()
        for cid in (1, 2, 3):
            cand = FMSketch.of(table.omega_c[cid], self.M, self.SEED)
            est = after_round0.union(cand).estimate()
            # Strictly below the -1.0 sentinel: the old loop never
            # accepted any candidate in round 1.
            assert est - current <= -1.0

    @pytest.mark.parametrize("fast_select", [True, False])
    def test_selection_completes_with_clamped_gains(self, fast_select):
        table = self.pinned_table()
        out = sketched_coverage_greedy(
            table, [0, 1, 2, 3], k=4, n_registers=self.M, seed=self.SEED,
            fast_select=fast_select,
        )
        assert len(out.selected) == 4
        assert sorted(out.selected) == [0, 1, 2, 3]
        assert all(g >= 0.0 for g in out.gains)
        # Rounds 1-3 add (near-)nothing: clamped to exactly zero.
        assert out.gains[0] > 0.0
        assert out.gains[1:] == (0.0, 0.0, 0.0)

    def test_fast_path_bit_identical(self):
        table = self.pinned_table()
        fast = sketched_coverage_greedy(
            table, [0, 1, 2, 3], k=4, n_registers=self.M, seed=self.SEED,
            fast_select=True,
        )
        scalar = sketched_coverage_greedy(
            table, [0, 1, 2, 3], k=4, n_registers=self.M, seed=self.SEED,
            fast_select=False,
        )
        assert fast == scalar


class TestFastPathEquivalence:
    """The register-matrix fast path is bit-equal to the sketch loop."""

    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("m", [16, 64, 256])
    def test_bit_identical_selections(self, seed, m):
        rng = np.random.default_rng(seed)
        omega = {
            cid: set(rng.choice(300, size=int(rng.integers(0, 120)),
                                replace=False).tolist())
            for cid in range(12)
        }
        t = InfluenceTable.from_mappings(omega, {})
        fast = sketched_coverage_greedy(
            t, list(range(12)), k=6, n_registers=m, seed=seed, fast_select=True
        )
        scalar = sketched_coverage_greedy(
            t, list(range(12)), k=6, n_registers=m, seed=seed, fast_select=False
        )
        assert fast == scalar
