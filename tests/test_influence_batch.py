"""Differential tests: the batched kernel vs. the scalar evaluator.

The contract under test (see ``repro/influence/batch.py``): for every
``PF`` variant, every ``τ``, and every user geometry — single positions,
positions at exactly distance 0, histories longer than the scalar
fast-path cutoff — the batch kernel's decisions and probabilities are
*bit-identical* to the scalar evaluator's, and its
:class:`EvaluationStats` counters equal the scalar path's pair-by-pair
accounting exactly.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.entities import MovingUser
from repro.exceptions import ProbabilityError
from repro.influence import (
    BatchInfluenceEvaluator,
    ExponentialPF,
    InfluenceEvaluator,
    LinearPF,
    PositionArena,
    PowerLawPF,
    paper_default_pf,
)

PF_VARIANTS = [
    paper_default_pf(),
    ExponentialPF(p0=0.9, scale=1.0),
    ExponentialPF(p0=1.0, scale=2.0),  # max_probability = 1: survival floor 0
    LinearPF(p0=0.9, cutoff=5.0),  # survival exactly 1 beyond the cutoff
    PowerLawPF(p0=0.9, scale=1.0, alpha=2.0),
]
TAUS = (0.3, 0.7, 0.95)


def _population(seed: int, n_users: int = 120) -> list:
    """Users covering the interesting geometry: r = 1, d = 0, r > 128."""
    rng = np.random.default_rng(seed)
    users = []
    for uid in range(n_users):
        if uid % 10 == 0:
            r = 1  # single-position users
        elif uid % 17 == 0:
            r = int(rng.integers(129, 260))  # scalar blocked path
        else:
            r = int(rng.integers(2, 40))
        pos = rng.normal(rng.uniform(-6, 6, 2), 2.5, size=(r, 2))
        if uid % 5 == 0:
            pos[rng.integers(r)] = [0.25, -0.75]  # exactly on the facility
        users.append(MovingUser(uid, pos))
    return users


FACILITY = (0.25, -0.75)


class TestDifferentialAgainstScalar:
    @pytest.mark.parametrize("pf", PF_VARIANTS, ids=repr)
    @pytest.mark.parametrize("tau", TAUS)
    @pytest.mark.parametrize("early_stopping", [True, False])
    def test_decisions_and_stats(self, pf, tau, early_stopping):
        users = _population(seed=1)
        arena = PositionArena.from_users(users)
        scalar = InfluenceEvaluator(pf, tau, early_stopping=early_stopping)
        expected = np.array(
            [scalar.influences(*FACILITY, u.positions) for u in users]
        )
        batch = BatchInfluenceEvaluator(pf, tau, early_stopping=early_stopping)
        got = batch.influences_users(*FACILITY, arena)
        assert np.array_equal(expected, got)
        assert batch.stats.total_evaluations == scalar.stats.total_evaluations
        # The full counter set, not just the total: the batch kernel must
        # account per-segment stop points identically to the scalar scan.
        assert batch.stats.__dict__ == scalar.stats.__dict__

    @pytest.mark.parametrize("pf", PF_VARIANTS, ids=repr)
    def test_probabilities_bitwise(self, pf):
        users = _population(seed=2)
        arena = PositionArena.from_users(users)
        scalar = InfluenceEvaluator(pf, 0.7)
        expected = np.array(
            [scalar.probability(*FACILITY, u.positions) for u in users]
        )
        batch = BatchInfluenceEvaluator(pf, 0.7)
        got = batch.probabilities_users(*FACILITY, arena)
        assert np.array_equal(expected, got)  # bitwise, not approx
        assert batch.stats.__dict__ == scalar.stats.__dict__

    @pytest.mark.parametrize("pf", PF_VARIANTS, ids=repr)
    @pytest.mark.parametrize("early_stopping", [True, False])
    def test_facility_batch_kernel(self, pf, early_stopping):
        """One user vs. many facilities: the streaming re-verification shape."""
        rng = np.random.default_rng(3)
        xy = rng.uniform(-6, 6, (80, 2))
        for user in (_population(seed=3, n_users=8))[:8]:
            scalar = InfluenceEvaluator(pf, 0.6, early_stopping=early_stopping)
            expected = np.array(
                [scalar.influences(x, y, user.positions) for x, y in xy]
            )
            batch = BatchInfluenceEvaluator(pf, 0.6, early_stopping=early_stopping)
            got = batch.influences_facilities(xy, user.positions)
            assert np.array_equal(expected, got)
            assert batch.stats.__dict__ == scalar.stats.__dict__

    def test_row_subsets_arbitrary_order(self):
        users = _population(seed=4)
        arena = PositionArena.from_users(users)
        pf = paper_default_pf()
        uids = [13, 2, 77, 2 + 17 * 5, 0, 119]
        rows = arena.rows_for(uids)
        batch = BatchInfluenceEvaluator(pf, 0.7)
        got = batch.influences_users(*FACILITY, arena, rows)
        scalar = InfluenceEvaluator(pf, 0.7)
        expected = [scalar.influences(*FACILITY, users[u].positions) for u in uids]
        assert got.tolist() == expected

    def test_empty_row_set(self):
        arena = PositionArena.from_users(_population(seed=5, n_users=4))
        batch = BatchInfluenceEvaluator(paper_default_pf(), 0.7)
        out = batch.influences_users(0.0, 0.0, arena, np.zeros(0, dtype=np.int64))
        assert out.shape == (0,)
        assert batch.stats.total_evaluations == 0

    @given(
        hnp.arrays(
            dtype=float,
            shape=st.tuples(st.integers(1, 40), st.just(2)),
            elements=st.floats(min_value=-30, max_value=30, allow_nan=False),
        ),
        st.floats(min_value=0.05, max_value=0.95),
        st.floats(min_value=-5, max_value=5),
        st.floats(min_value=-5, max_value=5),
    )
    @settings(max_examples=150, deadline=None)
    def test_property_single_user_agrees(self, pos, tau, vx, vy):
        """Hypothesis sweep: arbitrary geometry, threshold and facility."""
        user = MovingUser(0, pos)
        arena = PositionArena.from_users([user])
        for early_stopping in (True, False):
            scalar = InfluenceEvaluator(
                paper_default_pf(), tau, early_stopping=early_stopping
            )
            batch = BatchInfluenceEvaluator(
                paper_default_pf(), tau, early_stopping=early_stopping
            )
            expected = scalar.influences(vx, vy, user.positions)
            got = batch.influences_users(vx, vy, arena)
            assert got.tolist() == [expected]
            assert batch.stats.__dict__ == scalar.stats.__dict__


class TestArena:
    def test_layout(self):
        users = [
            MovingUser(7, np.array([[0.0, 1.0], [2.0, 3.0]])),
            MovingUser(3, np.array([[4.0, 5.0]])),
        ]
        arena = PositionArena.from_users(users)
        assert len(arena) == 2
        assert arena.n_positions == 3
        assert arena.offsets.tolist() == [0, 2, 3]
        assert arena.uids.tolist() == [7, 3]
        assert arena.row_of(3) == 1
        assert arena.lengths().tolist() == [2, 1]
        flat, lens = arena.gather(np.array([1, 0]))
        assert flat.tolist() == [[4.0, 5.0], [0.0, 1.0], [2.0, 3.0]]
        assert lens.tolist() == [1, 2]

    def test_gather_all_is_zero_copy(self):
        arena = PositionArena.from_users(_population(seed=6, n_users=5))
        flat, _ = arena.gather(None)
        assert flat is arena.positions

    def test_dataset_arena_cached(self):
        from tests.conftest import build_instance

        ds = build_instance(seed=0, n_users=10)
        assert ds.arena is ds.arena
        assert len(ds.arena) == 10
        assert ds.arena.n_positions == ds.n_positions

    def test_validation(self):
        with pytest.raises(Exception):
            PositionArena.from_users([])
        with pytest.raises(ProbabilityError):
            BatchInfluenceEvaluator(paper_default_pf(), 0.0)


class TestSolverLevelIdentity:
    """batch_verify=True and =False give identical results and counters."""

    def _problem(self):
        from repro.solvers import MC2LSProblem
        from tests.conftest import build_instance

        return MC2LSProblem(build_instance(seed=9, n_users=40, r=8), k=3, tau=0.6)

    def test_iqt(self):
        from repro.solvers import IQTSolver

        problem = self._problem()
        a = IQTSolver(batch_verify=True).solve(problem)
        b = IQTSolver(batch_verify=False).solve(problem)
        assert a.selected == b.selected
        assert a.objective == b.objective
        assert a.table.omega_c == b.table.omega_c
        assert a.table.f_o == b.table.f_o
        assert a.evaluation.__dict__ == b.evaluation.__dict__

    def test_baseline_and_exact(self):
        from repro.solvers import BaselineGreedySolver, ExactSolver

        problem = self._problem()
        a = BaselineGreedySolver(batch_verify=True).solve(problem)
        b = BaselineGreedySolver(batch_verify=False).solve(problem)
        assert a.selected == b.selected
        assert a.table.omega_c == b.table.omega_c
        assert a.evaluation.__dict__ == b.evaluation.__dict__
        c = ExactSolver(batch_verify=True).solve(problem)
        d = ExactSolver(batch_verify=False).solve(problem)
        assert c.selected == d.selected
        assert c.evaluation.__dict__ == d.evaluation.__dict__

    def test_streaming(self):
        from repro.streaming import StreamingMC2LS
        from tests.conftest import build_instance

        ds = build_instance(seed=10, n_users=30, r=6)
        fast = StreamingMC2LS(ds.facilities, ds.candidates, k=3, batch_verify=True)
        slow = StreamingMC2LS(ds.facilities, ds.candidates, k=3, batch_verify=False)
        for u in ds.users:
            fast.add_user(u)
            slow.add_user(u)
        assert fast.table().omega_c == slow.table().omega_c
        assert fast.table().f_o == slow.table().f_o
        assert fast._evaluator.stats.__dict__ == slow._evaluator.stats.__dict__
