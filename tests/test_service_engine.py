"""The serving engine: differential identity, caching, deadlines, admission.

The core acceptance property: every engine result is **bit-identical**
(selection order, per-round gains, objective) to the corresponding direct
``Solver.solve`` call, across all supported solvers and kernel-knob
combinations, with and without candidate masks.
"""

import itertools

import pytest

from repro.exceptions import (
    DeadlineExceededError,
    EngineSaturatedError,
    QueryCancelledError,
    ServiceError,
    SolverError,
)
from repro.service import (
    SOLVER_FACTORIES,
    CancelToken,
    SelectionEngine,
    SelectionQuery,
)
from repro.solvers import MC2LSProblem

from .conftest import build_instance


@pytest.fixture(scope="module")
def dataset():
    return build_instance(seed=11, n_users=40, n_candidates=14, n_facilities=10)


@pytest.fixture()
def engine(dataset):
    eng = SelectionEngine(dataset, max_workers=2, max_queued=16)
    yield eng
    eng.shutdown()


def direct_solver(name, batch_verify, fast_select):
    solver = SOLVER_FACTORIES[name](batch_verify)
    solver.fast_select = fast_select
    return solver


class TestDifferentialIdentity:
    @pytest.mark.parametrize("solver_name", sorted(SOLVER_FACTORIES))
    @pytest.mark.parametrize(
        "batch_verify,fast_select", list(itertools.product([True, False], repeat=2))
    )
    def test_engine_matches_direct_solve(
        self, engine, dataset, solver_name, batch_verify, fast_select
    ):
        query = SelectionQuery(
            k=4,
            tau=0.6,
            solver=solver_name,
            batch_verify=batch_verify,
            fast_select=fast_select,
        )
        served = engine.execute(query)
        direct = direct_solver(solver_name, batch_verify, fast_select).solve(
            MC2LSProblem(dataset, k=4, tau=0.6)
        )
        assert served.selected == direct.selected
        assert served.gains == direct.gains
        assert served.objective == direct.objective

    @pytest.mark.parametrize("k", [1, 3, 7])
    def test_varying_k_reuses_prepared(self, engine, dataset, k):
        served = engine.execute(SelectionQuery(k=k, tau=0.7))
        direct = SOLVER_FACTORIES["iqt"](True).solve(
            MC2LSProblem(dataset, k=k, tau=0.7)
        )
        assert served.selected == direct.selected
        assert served.gains == direct.gains

    @pytest.mark.parametrize("fast_select", [True, False])
    def test_candidate_mask_matches_restricted_instance(
        self, engine, dataset, fast_select
    ):
        subset = tuple(c.fid for c in dataset.candidates[::2])
        served = engine.execute(
            SelectionQuery(k=3, candidate_ids=subset, fast_select=fast_select)
        )
        restricted = dataset.with_candidates(dataset.candidates[::2])
        direct = SOLVER_FACTORIES["iqt"](True).solve(
            MC2LSProblem(restricted, k=3, tau=0.7)
        )
        assert served.selected == direct.selected
        assert served.gains == direct.gains
        assert served.objective == direct.objective

    def test_cached_result_identical_to_cold(self, engine):
        query = SelectionQuery(k=5, tau=0.65)
        cold = engine.execute(query)
        warm = engine.execute(query)
        assert warm.selected == cold.selected
        assert warm.gains == cold.gains
        assert warm.objective == cold.objective
        assert cold.stats.result_cache == "miss"
        assert warm.stats.result_cache == "hit"


class TestCachingBehaviour:
    def test_prepared_reused_across_k(self, engine):
        first = engine.execute(SelectionQuery(k=2, tau=0.55))
        second = engine.execute(SelectionQuery(k=6, tau=0.55))
        assert first.stats.prepared_cache == "miss"
        assert second.stats.prepared_cache == "hit"
        # Different tau needs a fresh preparation.
        third = engine.execute(SelectionQuery(k=2, tau=0.75))
        assert third.stats.prepared_cache == "miss"

    def test_use_cache_false_bypasses(self, engine):
        query = SelectionQuery(k=3, use_cache=False)
        r1 = engine.execute(query)
        r2 = engine.execute(query)
        assert r1.stats.result_cache == "bypass"
        assert r2.stats.result_cache == "bypass"
        assert r2.stats.prepared_cache == "bypass"
        assert r1.selected == r2.selected

    def test_publish_new_version_invalidates(self, engine, dataset):
        query = SelectionQuery(k=3)
        engine.execute(query)
        old = engine.snapshot()
        mutated = dataset.with_facilities(dataset.facilities[:-2])
        new = engine.publish(mutated)
        assert old.superseded
        assert new.version == old.version + 1
        served = engine.execute(query)
        assert served.stats.result_cache == "miss"
        assert served.stats.snapshot_version == new.version
        direct = SOLVER_FACTORIES["iqt"](True).solve(
            MC2LSProblem(mutated, k=3, tau=0.7)
        )
        assert served.selected == direct.selected

    def test_republish_identical_dataset_keeps_caches(self, engine, dataset):
        query = SelectionQuery(k=3)
        engine.execute(query)
        engine.publish(build_instance(seed=11, n_users=40, n_candidates=14,
                                      n_facilities=10))
        served = engine.execute(query)
        assert served.stats.result_cache == "hit"


class TestValidationAndControl:
    def test_requires_snapshot(self):
        eng = SelectionEngine()
        with pytest.raises(ServiceError, match="no snapshot"):
            eng.execute(SelectionQuery(k=1))
        eng.shutdown()

    def test_unknown_solver(self, engine):
        with pytest.raises(ServiceError, match="unknown solver"):
            engine.execute(SelectionQuery(k=1, solver="nope"))

    def test_infeasible_k(self, engine):
        with pytest.raises(SolverError):
            engine.execute(SelectionQuery(k=999))

    def test_infeasible_k_for_mask(self, engine, dataset):
        subset = (dataset.candidates[0].fid,)
        with pytest.raises(SolverError):
            engine.execute(SelectionQuery(k=2, candidate_ids=subset))

    def test_unknown_mask_candidate(self, engine):
        with pytest.raises(SolverError, match="unknown"):
            engine.execute(SelectionQuery(k=1, candidate_ids=(987654,)))

    def test_deadline_expired_before_start(self, engine):
        with pytest.raises(DeadlineExceededError):
            engine.execute(SelectionQuery(k=3, tau=0.51, deadline_s=0.0))

    def test_cancel_token_aborts_rounds(self, engine):
        token = CancelToken()
        token.cancel()
        with pytest.raises(QueryCancelledError):
            engine.execute(SelectionQuery(k=3, tau=0.52), cancel=token)

    def test_admission_control_rejects_when_saturated(self, dataset):
        eng = SelectionEngine(dataset, max_workers=1, max_queued=1)
        try:
            # Saturate the single slot with an uncached slow-ish query,
            # then the next submission must bounce.
            with pytest.raises(EngineSaturatedError):
                for i in range(50):
                    eng.submit(SelectionQuery(k=3, tau=0.5 + i * 1e-3,
                                              use_cache=False))
            assert eng.stats()["scheduler"]["rejected"] >= 1
        finally:
            eng.shutdown()

    def test_submit_returns_result(self, engine):
        handle = engine.submit(SelectionQuery(k=4))
        result = handle.result(timeout=30)
        assert len(result.selected) == 4

    def test_context_manager(self, dataset):
        with SelectionEngine(dataset) as eng:
            assert eng.execute(SelectionQuery(k=1)).selected
