"""Smoke tests: the fast examples must run end to end.

Each example is executed as a subprocess (the way a user runs it) and
its headline output is asserted.  The slower demos (streaming market,
geo-social campaign, road-network city) are exercised through their
underlying modules' test files instead of here, to keep the suite quick.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


class TestFastExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "Identical selections" in out
        assert "faster" in out

    def test_checkin_pipeline(self):
        out = run_example("checkin_pipeline.py")
        assert "selected sites" in out
        assert "captured demand" in out

    def test_billboard_placement(self):
        out = run_example("billboard_placement.py")
        assert "budget sizing" in out
        assert "marginal gain falls below" in out

    def test_serving_engine(self):
        out = run_example("serving_engine.py")
        assert "What-if sweep" in out
        assert "bit-identical" in out
        assert "invalidated" in out

    def test_quickstart_deterministic(self):
        a = run_example("quickstart.py")
        b = run_example("quickstart.py")
        # Selections and objective lines are seeded; only timings vary.
        pick = lambda text: [
            line for line in text.splitlines() if "selected candidates" in line
        ]
        assert pick(a) == pick(b)
