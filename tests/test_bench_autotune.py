"""Smoke test: the autotune benchmark must run and record a valid point.

Invokes ``benchmarks/bench_autotune.py --smoke`` as a subprocess and
asserts all three benchmark invariants: replays are deterministic,
exact configs reproduce recorded selections, and the tuned config's
measured P50 beats the all-defaults baseline.  The smoke run writes to a
temporary path so the committed full-scale ``BENCH_autotune.json`` at
the repo root is not overwritten by test runs.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_smoke_records_trajectory_point(tmp_path):
    out_path = tmp_path / "BENCH_autotune.json"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.run(
        [
            sys.executable,
            str(REPO_ROOT / "benchmarks" / "bench_autotune.py"),
            "--smoke",
            "--out",
            str(out_path),
        ],
        capture_output=True,
        text=True,
        timeout=580,
        cwd=REPO_ROOT,
        env=env,
    )
    assert proc.returncode == 0, proc.stderr
    assert out_path.exists()
    payload = json.loads(out_path.read_text())
    assert payload["benchmark"] == "autotune"
    assert payload["trace_queries"] >= 40
    assert payload["candidates_scored"] >= 100
    assert payload["replay_deterministic"] is True
    assert payload["replay_exact"] is True
    assert payload["tuned_beats_baseline"] is True
    # Stage timings follow the repeats/median/spread discipline.
    assert set(payload["stages"]) == {"record", "calibrate", "tune"}
    for name, stage in payload["stages"].items():
        assert stage["repeats"] == payload["stage_repeats"]
        assert stage["spread_s"] >= 0.0
        assert payload[f"{name}_s"] == stage["median_s"]


def test_committed_trajectory_point_is_full_scale():
    """The recorded repo-root point meets the acceptance floor:
    the tuned config's replayed P50 beats the all-defaults config."""
    payload = json.loads((REPO_ROOT / "BENCH_autotune.json").read_text())
    assert payload["n_users"] >= 400
    assert payload["n_candidates"] >= 40
    assert payload["candidates_scored"] >= 500
    assert payload["replay_deterministic"] is True
    assert payload["replay_exact"] is True
    assert payload["tuned_beats_baseline"] is True
    assert payload["tuned_p50_s"] < payload["baseline_p50_s"]
    assert payload["speedup_p50"] > 1.0
    # Full scale runs every stage >= 3 times (median/spread discipline)
    # and calibrates CELF-path fits for the set-aware capture models.
    assert payload["stage_repeats"] >= 3
    for stage in payload["stages"].values():
        assert stage["repeats"] >= 3
        assert stage["median_s"] > 0.0
    capture_coeff = payload["cost_model"]["capture_select_coeff"]
    assert set(capture_coeff) == {"mnl", "fixed-worlds"}
