"""Tests for the capacitated MC²LS variant."""

import pytest

from repro.exceptions import SolverError
from repro.solvers import (
    CapacitatedGreedySolver,
    IQTSolver,
    MC2LSProblem,
)
from repro.solvers.capacitated import _assignment_value
from repro.competition import InfluenceTable
from tests.conftest import build_instance


@pytest.fixture
def star_table():
    """One hub candidate covering 4 users, two spokes covering 1 each."""
    return InfluenceTable.from_mappings(
        omega_c={0: {1, 2, 3, 4}, 1: {1}, 2: {5}},
        f_o={uid: set() for uid in range(1, 6)},
    )


UNIT_WEIGHTS = {uid: 1.0 for uid in range(1, 6)}


class TestAssignmentValue:
    def test_unlimited_capacity_counts_coverage(self, star_table):
        value, served = _assignment_value(star_table, [0, 1, 2], 100, UNIT_WEIGHTS)
        assert value == pytest.approx(5.0)
        assert len(served[0]) == 4

    def test_capacity_binds(self, star_table):
        value, served = _assignment_value(star_table, [0], 2, UNIT_WEIGHTS)
        assert value == pytest.approx(2.0)
        assert len(served[0]) == 2

    def test_overflow_spills_to_other_sites(self, star_table):
        # Hub capped at 2; user 1 can spill to spoke 1.
        value, served = _assignment_value(star_table, [0, 1], 2, UNIT_WEIGHTS)
        assert value == pytest.approx(3.0)
        all_served = [uid for uids in served.values() for uid in uids]
        assert len(all_served) == len(set(all_served))  # each user served once

    def test_heavier_users_served_first(self):
        table = InfluenceTable.from_mappings(
            omega_c={0: {1, 2}}, f_o={1: {10, 11}, 2: set()}
        )
        weights = {1: 1.0 / 3.0, 2: 1.0}
        value, served = _assignment_value(table, [0], 1, weights)
        assert served[0] == [2]  # the full-weight user wins the slot
        assert value == pytest.approx(1.0)


class TestCapacitatedSolver:
    def test_validation(self):
        with pytest.raises(SolverError):
            CapacitatedGreedySolver(capacity=0)

    def test_huge_capacity_matches_uncapacitated(self, small_instance):
        problem = MC2LSProblem(small_instance, k=3, tau=0.5)
        plain = IQTSolver().solve(problem)
        capped = CapacitatedGreedySolver(capacity=10_000).solve(problem)
        assert capped.selected == plain.selected
        assert capped.objective == pytest.approx(plain.objective)

    def test_tight_capacity_spreads_sites(self):
        dataset = build_instance(seed=20, n_users=40, n_candidates=10,
                                 n_facilities=5, clustered=True)
        problem = MC2LSProblem(dataset, k=3, tau=0.4)
        tight = CapacitatedGreedySolver(capacity=2).solve(problem)
        loose = CapacitatedGreedySolver(capacity=1_000).solve(problem)
        # A binding capacity can only reduce the captured value.
        assert tight.objective <= loose.objective + 1e-9
        # And it serves at most capacity x k users' worth of weight slots.
        assert tight.objective <= 2 * 3 + 1e-9

    def test_gains_structure(self, small_instance):
        problem = MC2LSProblem(small_instance, k=4, tau=0.5)
        result = CapacitatedGreedySolver(capacity=3).solve(problem)
        assert len(result.gains) == 4
        assert all(g >= -1e-12 for g in result.gains)
        assert result.objective == pytest.approx(sum(result.gains), abs=1e-9)

    def test_outcome_details_assignment_valid(self, small_instance):
        problem = MC2LSProblem(small_instance, k=3, tau=0.5)
        solver = CapacitatedGreedySolver(capacity=4)
        outcome = solver.outcome_details(problem)
        served_all = [uid for uids in outcome.assignment.values() for uid in uids]
        assert len(served_all) == len(set(served_all))
        for cid, uids in outcome.assignment.items():
            assert len(uids) <= 4
            assert cid in outcome.selected
