"""Smoke test: the capture-models benchmark must run and record.

Invokes ``benchmarks/bench_capture_models.py --smoke`` the way CI does
(as a subprocess) and asserts the degenerate-case identity check is
green and every registered model produced a timed record.  No timing
floors here — the smoke scale is tiny; the committed full-scale point
carries the trajectory numbers.  The smoke run writes to a temporary
path so the committed ``BENCH_capture_models.json`` is not overwritten.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_smoke_records_trajectory_point(tmp_path):
    out_path = tmp_path / "BENCH_capture_models.json"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.run(
        [
            sys.executable,
            str(REPO_ROOT / "benchmarks" / "bench_capture_models.py"),
            "--smoke",
            "--out",
            str(out_path),
        ],
        capture_output=True,
        text=True,
        timeout=600,
        cwd=REPO_ROOT,
        env=env,
    )
    assert proc.returncode == 0, proc.stderr
    assert out_path.exists()
    payload = json.loads(out_path.read_text())
    assert payload["benchmark"] == "capture_models"
    assert payload["evenly_split_bit_identical"] is True
    models = payload["models"]
    assert set(models) == {"evenly-split", "huff", "mnl", "fixed-worlds"}
    for name in ("evenly-split", "huff"):
        assert models[name]["path"] == "csr-kernel"
    for name in ("mnl", "fixed-worlds"):
        assert models[name]["path"] == "celf"
        # CELF must never evaluate more than a full rescan would.
        assert models[name]["evaluations"] <= models[name]["rescan_evaluations"]
    for record in models.values():
        assert record["select"]["repeats"] >= 2
        assert len(record["selected"]) == payload["k"]
        assert record["objective"] >= 0.0
    assert payload["resolve"]["repeats"] >= 2
    assert payload["resolve"]["median_s"] > 0.0


def test_committed_trajectory_point_is_full_scale():
    """The recorded repo-root point meets the acceptance floor."""
    payload = json.loads((REPO_ROOT / "BENCH_capture_models.json").read_text())
    assert payload["n_users"] >= 60_000
    assert payload["evenly_split_bit_identical"] is True
    assert set(payload["models"]) == {
        "evenly-split", "huff", "mnl", "fixed-worlds"
    }
    for record in payload["models"].values():
        assert record["select"]["repeats"] >= 2
    # The resolve stage is repeat-timed like the selections.
    assert payload["resolve"]["repeats"] >= 2
    assert payload["resolve"]["spread_s"] >= 0.0
    assert payload["resolve"]["median_s"] > 0.0
