"""KnobTuner: grid screening, measured confirmation, output schema."""

import json

import pytest

from repro.exceptions import TuningError
from repro.tuning import (
    CostModel,
    EngineConfig,
    KnobTuner,
    WorkloadTrace,
    record_canned,
)
from repro.tuning.tuner import (
    DEFAULT_SEARCH_SPACE,
    _memory_proxy,
    default_search_space,
)

SMALL = dict(n_users=50, n_candidates=8, n_facilities=16, seed=3)

#: A tiny grid keeping tuner tests fast; the default grid is exercised
#: by the autotune benchmark.
TINY_SPACE = {
    "prepared_cache_size": (8, 32),
    "result_cache_size": (64,),
    "max_workers": (1,),
    "batch_verify": (None,),
    "fast_select": (None,),
    "shard_workers": (0,),  # pin: the default grid adds it on multi-core
}


def _toy_model():
    return CostModel(
        resolve_coeff={True: (0.010, 0.0), False: (0.020, 0.0)},
        select_coeff={True: (0.001, 0.0), False: (0.002, 0.0)},
        hit_seconds=1e-5,
    )


@pytest.fixture(scope="module")
def bursty_trace():
    return record_canned("bursty", None, **SMALL)


class TestCandidates:
    def test_grid_is_full_product(self, bursty_trace):
        tuner = KnobTuner(
            bursty_trace, cost_model=_toy_model(), search_space=TINY_SPACE
        )
        configs = list(tuner.candidates())
        assert len(configs) == 2
        assert {c.prepared_cache_size for c in configs} == {8, 32}
        # Unsearched knobs keep engine defaults.
        assert all(c.max_queued == 64 for c in configs)

    def test_memory_proxy_orders_cache_sizes(self):
        small = EngineConfig(prepared_cache_size=8, result_cache_size=64)
        big = EngineConfig(prepared_cache_size=64, result_cache_size=64)
        assert _memory_proxy(small) < _memory_proxy(big)

    def test_shard_workers_imply_sharded_execution(self, bursty_trace):
        space = dict(TINY_SPACE, shard_workers=(0, 2))
        tuner = KnobTuner(
            bursty_trace, cost_model=_toy_model(), search_space=space
        )
        by_workers = {c.shard_workers: c for c in tuner.candidates()
                      if c.prepared_cache_size == 8}
        assert by_workers[0].execution == "threaded"
        assert by_workers[2].execution == "sharded"


class TestDefaultSearchSpace:
    def test_multi_core_searches_shard_workers(self, monkeypatch):
        monkeypatch.setattr("repro.tuning.tuner.os.cpu_count", lambda: 4)
        space = default_search_space()
        assert space["shard_workers"] == (0, 2, 4)
        # The machine-independent knobs are unchanged.
        for key, values in DEFAULT_SEARCH_SPACE.items():
            assert space[key] == values

    def test_single_core_excludes_shard_workers(self, monkeypatch):
        monkeypatch.setattr("repro.tuning.tuner.os.cpu_count", lambda: 1)
        assert "shard_workers" not in default_search_space()

    def test_unknown_core_count_excludes_shard_workers(self, monkeypatch):
        monkeypatch.setattr("repro.tuning.tuner.os.cpu_count", lambda: None)
        assert "shard_workers" not in default_search_space()

    def test_tuner_picks_up_machine_grid(self, bursty_trace, monkeypatch):
        monkeypatch.setattr("repro.tuning.tuner.os.cpu_count", lambda: 4)
        tuner = KnobTuner(bursty_trace, cost_model=_toy_model())
        assert tuner.search_space["shard_workers"] == (0, 2, 4)


class TestTune:
    def test_recommends_wider_prepared_cache_for_bursty(self, bursty_trace):
        recommendation = KnobTuner(
            bursty_trace, cost_model=_toy_model(), search_space=TINY_SPACE
        ).tune(validate_top=1)
        assert recommendation.config.prepared_cache_size == 32
        assert recommendation.predicted.prepared_hits == 20
        assert recommendation.baseline_predicted.prepared_hits == 0
        assert recommendation.candidates_scored == 2

    def test_measured_section_carries_both_replays(self, bursty_trace):
        recommendation = KnobTuner(
            bursty_trace, cost_model=_toy_model(), search_space=TINY_SPACE
        ).tune(validate_top=1)
        measured = recommendation.measured
        assert measured["pacing"] == "asap"
        assert measured["baseline"]["queries"] == 44
        assert measured["tuned"]["queries"] == 44
        assert recommendation.speedup_p50 > 0

    def test_recommendation_never_worse_than_baseline(self, bursty_trace):
        """A grid holding only the baseline's own knob values can only
        recommend the baseline — ties go to what the operator has."""
        default = EngineConfig()
        recommendation = KnobTuner(
            bursty_trace,
            cost_model=_toy_model(),
            search_space={
                "prepared_cache_size": (default.prepared_cache_size,),
                "result_cache_size": (default.result_cache_size,),
                "max_workers": (default.max_workers,),
                "batch_verify": (default.batch_verify,),
                "fast_select": (default.fast_select,),
            },
        ).tune(validate_top=1)
        assert recommendation.config == default
        assert recommendation.candidates_scored == 1

    def test_output_schema_is_json_portable(self, bursty_trace):
        recommendation = KnobTuner(
            bursty_trace, cost_model=_toy_model(), search_space=TINY_SPACE
        ).tune(validate_top=1)
        payload = json.loads(json.dumps(recommendation.as_dict()))
        assert payload["trace"] == "bursty"
        assert set(payload) == {
            "trace", "recommended", "predicted", "baseline_predicted",
            "measured", "speedup_p50", "candidates_scored",
        }
        assert payload["recommended"]["exact"] is True
        # The emitted config round-trips back into an EngineConfig.
        assert EngineConfig.from_dict(payload["recommended"]) == (
            recommendation.config
        )

    def test_validate_top_must_be_positive(self, bursty_trace):
        with pytest.raises(TuningError, match="validate_top"):
            KnobTuner(bursty_trace, cost_model=_toy_model()).tune(
                validate_top=0
            )

    def test_empty_trace_rejected(self):
        trace = WorkloadTrace("empty", {"kind": "california"})
        with pytest.raises(TuningError, match="no queries"):
            KnobTuner(trace, cost_model=_toy_model()).tune()
