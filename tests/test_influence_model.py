"""Unit and property tests for the cumulative influence model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.exceptions import ProbabilityError
from repro.influence import (
    EvaluationStats,
    InfluenceEvaluator,
    cumulative_probability,
    paper_default_pf,
)

PF = paper_default_pf()

positions_strategy = hnp.arrays(
    dtype=float,
    shape=st.tuples(st.integers(1, 25), st.just(2)),
    elements=st.floats(min_value=-30, max_value=30, allow_nan=False),
)


class TestCumulativeProbability:
    def test_paper_example_2(self):
        """Example 2: Pr over two positions with given per-position values."""
        # The paper assumes Pr_c1(p11)=0.6, Pr_c1(p12)=0.3 and derives 0.72.
        # We verify the combination rule itself with the same numbers.
        pr = 1.0 - (1.0 - 0.6) * (1.0 - 0.3)
        assert pr == pytest.approx(0.72)

    def test_single_position_equals_pf(self):
        pos = np.array([[1.0, 0.0]])
        assert cumulative_probability(0.0, 0.0, pos, PF) == pytest.approx(
            float(PF(1.0))
        )

    def test_facility_on_top_of_positions(self):
        pos = np.zeros((5, 2))
        # 1 - (1 - 0.5)^5
        assert cumulative_probability(0.0, 0.0, pos, PF) == pytest.approx(
            1.0 - 0.5**5
        )

    @given(positions_strategy)
    @settings(max_examples=100)
    def test_in_unit_interval(self, pos):
        p = cumulative_probability(0.0, 0.0, pos, PF)
        assert 0.0 <= p <= 1.0

    @given(positions_strategy)
    @settings(max_examples=100)
    def test_monotone_in_positions(self, pos):
        """Lemma 4: adding positions can only increase Pr_v(o)."""
        p_all = cumulative_probability(0.0, 0.0, pos, PF)
        p_prefix = cumulative_probability(0.0, 0.0, pos[:-1], PF) if pos.shape[0] > 1 else 0.0
        assert p_all >= p_prefix - 1e-12

    def test_far_positions_contribute_nothing(self):
        near = np.array([[0.5, 0.5]])
        far = np.array([[0.5, 0.5], [1000.0, 1000.0]])
        assert cumulative_probability(0, 0, far, PF) == pytest.approx(
            cumulative_probability(0, 0, near, PF)
        )


class TestInfluenceEvaluator:
    def test_tau_validation(self):
        with pytest.raises(ProbabilityError):
            InfluenceEvaluator(PF, 0.0)
        with pytest.raises(ProbabilityError):
            InfluenceEvaluator(PF, 1.0)

    def test_exact_decision(self):
        ev = InfluenceEvaluator(PF, tau=0.7, early_stopping=False)
        close = np.zeros((3, 2))  # Pr = 1 - 0.5^3 = 0.875 >= 0.7
        far = np.full((3, 2), 100.0)
        assert ev.influences(0, 0, close)
        assert not ev.influences(0, 0, far)

    def test_stats_counting(self):
        ev = InfluenceEvaluator(PF, tau=0.7, early_stopping=False)
        ev.influences(0, 0, np.zeros((4, 2)))
        assert ev.stats.full_evaluations == 1
        assert ev.stats.positions_touched == 4
        ev.stats.reset()
        assert ev.stats.total_evaluations == 0

    @given(
        positions_strategy,
        st.floats(min_value=0.05, max_value=0.95),
        st.floats(min_value=-5, max_value=5),
        st.floats(min_value=-5, max_value=5),
    )
    @settings(max_examples=200)
    def test_early_stop_matches_exact(self, pos, tau, vx, vy):
        """The early-stopping decision must equal the exact decision."""
        exact = cumulative_probability(vx, vy, pos, PF) >= tau
        ev = InfluenceEvaluator(PF, tau=tau, early_stopping=True)
        assert ev.influences(vx, vy, pos) == exact

    def test_early_stop_touches_fewer_positions(self):
        """A user glued to the facility certifies influence in few steps."""
        pos = np.zeros((50, 2))
        ev = InfluenceEvaluator(PF, tau=0.7, early_stopping=True)
        assert ev.influences(0.0, 0.0, pos)
        assert ev.stats.positions_touched < 10
        assert ev.stats.early_stops_positive == 1

    def test_out_of_reach_user_rejected(self):
        """A user entirely out of reach is correctly rejected."""
        pos = np.full((50, 2), 200.0)
        ev = InfluenceEvaluator(PF, tau=0.7, early_stopping=True)
        assert not ev.influences(0.0, 0.0, pos)
        assert ev.stats.early_stop_evaluations == 1

    def test_long_history_block_path(self):
        """Histories beyond the vectorised cutoff use the block path."""
        ev = InfluenceEvaluator(PF, tau=0.7, early_stopping=True)
        near = np.zeros((300, 2))
        assert ev.influences(0.0, 0.0, near)
        assert ev.stats.positions_touched < 300  # decided in the first block
        far = np.full((300, 2), 500.0)
        assert not ev.influences(0.0, 0.0, far)

    def test_fast_path_counts_negative_early_stops(self):
        """Regression: the r <= 128 path applies the survival-floor bound.

        An unreachable user certifies a negative decision long before the
        full scan — ``early_stops_negative`` must increment and
        ``positions_touched`` must reflect the stop point, exactly as the
        blocked path accounts for long histories.
        """
        pos = np.full((50, 2), 200.0)  # every survival factor is 1.0
        ev = InfluenceEvaluator(PF, tau=0.7, early_stopping=True)
        assert not ev.influences(0.0, 0.0, pos)
        assert ev.stats.early_stops_negative == 1
        assert ev.stats.positions_touched < 50

    def test_negative_accounting_agrees_across_paths(self):
        """Figs. 15–16 counters mean the same thing on both sides of r = 128.

        The same unreachable prefix decides at the same position whether
        the history is short (fast path) or long (blocked path), so both
        report identical touched counts and negative early stops.
        """
        fast = InfluenceEvaluator(PF, tau=0.7, early_stopping=True)
        blocked = InfluenceEvaluator(PF, tau=0.7, early_stopping=True)
        short = np.full((100, 2), 200.0)
        long = np.full((200, 2), 200.0)
        assert not fast.influences(0.0, 0.0, short)
        assert not blocked.influences(0.0, 0.0, long)
        assert fast.stats.early_stops_negative == 1
        assert blocked.stats.early_stops_negative == 1
        # The survival floor here is 0.5 and the target 0.3, so the bound
        # certifies as soon as one position remains: both paths stop at
        # r − 1, the identical distance from the end of the history.
        assert fast.stats.positions_touched == 99
        assert blocked.stats.positions_touched == 199

    def test_positive_accounting_agrees_across_paths(self):
        """A user glued to the facility stops at the same prefix in both paths."""
        fast = InfluenceEvaluator(PF, tau=0.7, early_stopping=True)
        blocked = InfluenceEvaluator(PF, tau=0.7, early_stopping=True)
        assert fast.influences(0.0, 0.0, np.zeros((100, 2)))
        assert blocked.influences(0.0, 0.0, np.zeros((200, 2)))
        assert fast.stats.early_stops_positive == 1
        assert blocked.stats.early_stops_positive == 1
        assert fast.stats.positions_touched == blocked.stats.positions_touched

    def test_no_early_stop_counter_on_full_scan_decision(self):
        """A decision that needs the full history is not an early stop."""
        # Single far-but-not-unreachable position: neither certificate can
        # fire before the last (only) position.
        pos = np.array([[5.0, 0.0]])
        ev = InfluenceEvaluator(PF, tau=0.7, early_stopping=True)
        assert not ev.influences(0.0, 0.0, pos)
        assert ev.stats.early_stops_positive == 0
        assert ev.stats.early_stops_negative == 0
        assert ev.stats.positions_touched == 1

    def test_decision_with_probability(self):
        ev = InfluenceEvaluator(PF, tau=0.5)
        decided, p = ev.decision_with_probability(0, 0, np.zeros((2, 2)))
        assert decided
        assert p == pytest.approx(0.75)

    def test_decision_with_probability_boundary_ulp(self):
        """Regression: the decision is made on the survival product.

        For these positions ``p = fl(1 − q)`` rounds one ulp below
        ``1 − q``, so the complement rule ``p >= τ`` rejects while the
        survival rule ``q <= 1 − τ`` (the call ``influences`` makes)
        accepts.  ``decision_with_probability`` must agree with
        ``influences``.
        """
        pos = np.array([[-0.9725326469572004, -0.6502859968310326]])
        q = float(np.prod(1.0 - PF(np.hypot(pos[:, 0], pos[:, 1]))))
        tau = 0.23687108115445768
        assert 1.0 - q < tau, "setup: complement rule must sit one ulp below tau"
        assert q <= 1.0 - tau, "setup: survival rule must accept"
        ev = InfluenceEvaluator(PF, tau=tau, early_stopping=False)
        decided, p = ev.decision_with_probability(0.0, 0.0, pos)
        assert decided == ev.influences(0.0, 0.0, pos)
        assert decided
        assert p == 1.0 - q

    @given(positions_strategy, st.floats(min_value=0.05, max_value=0.95))
    @settings(max_examples=100)
    def test_decision_with_probability_matches_influences(self, pos, tau):
        """The docstring contract: every path makes the same boundary call."""
        ev = InfluenceEvaluator(PF, tau=tau, early_stopping=False)
        decided, _ = ev.decision_with_probability(0.0, 0.0, pos)
        assert decided == ev.influences(0.0, 0.0, pos)


class TestEvaluationStats:
    def test_merge(self):
        a = EvaluationStats(full_evaluations=2, positions_touched=10)
        b = EvaluationStats(early_stop_evaluations=3, early_stops_positive=1)
        a.merge(b)
        assert a.total_evaluations == 5
        assert a.positions_touched == 10
        assert a.early_stops_positive == 1
