"""Tests for the budget-constrained solver."""

import pytest

from repro.competition import cinf_group
from repro.exceptions import SolverError
from repro.solvers import BudgetedGreedySolver, IQTSolver, MC2LSProblem
from tests.conftest import build_instance


def uniform_costs(dataset, cost=1.0):
    return {c.fid: cost for c in dataset.candidates}


class TestValidation:
    def test_bad_budget_and_costs(self, small_instance):
        with pytest.raises(SolverError):
            BudgetedGreedySolver(uniform_costs(small_instance), budget=0)
        with pytest.raises(SolverError):
            BudgetedGreedySolver({0: -1.0}, budget=5)

    def test_missing_costs_detected(self, small_instance):
        solver = BudgetedGreedySolver({0: 1.0}, budget=5)
        with pytest.raises(SolverError):
            solver.solve(MC2LSProblem(small_instance, k=2, tau=0.5))


class TestBudgetedSelection:
    def test_respects_budget(self, small_instance):
        costs = uniform_costs(small_instance, 2.0)
        solver = BudgetedGreedySolver(costs, budget=7.0)
        result = solver.solve(MC2LSProblem(small_instance, k=2, tau=0.5))
        assert solver.total_cost(result.selected) <= 7.0
        assert len(result.selected) == 3  # floor(7 / 2)

    def test_uniform_costs_match_cardinality_greedy(self, small_instance):
        """Unit costs with budget k reduce to the plain greedy prefix."""
        problem = MC2LSProblem(small_instance, k=3, tau=0.5)
        plain = IQTSolver().solve(problem)
        budgeted = BudgetedGreedySolver(
            uniform_costs(small_instance, 1.0), budget=3.0
        ).solve(problem)
        assert budgeted.selected == plain.selected

    def test_cheap_pair_beats_expensive_star(self):
        """Ratio greedy avoids one expensive site when two cheap sites
        jointly capture more per unit budget."""
        dataset = build_instance(seed=40, n_users=30, n_candidates=8)
        problem = MC2LSProblem(dataset, k=2, tau=0.4)
        reference = IQTSolver().solve(problem)
        best = reference.selected[0]
        # Make the plain-greedy winner unaffordable alongside anything else.
        costs = {c.fid: 1.0 for c in dataset.candidates}
        costs[best] = 10.0
        solver = BudgetedGreedySolver(costs, budget=3.0)
        result = solver.solve(problem)
        assert best not in result.selected
        assert solver.total_cost(result.selected) <= 3.0
        assert result.objective > 0

    def test_best_single_fallback(self):
        """When one whale candidate dominates, the single-element arm of
        the Khuller comparison must win over a penny-wise ratio pick."""
        dataset = build_instance(seed=41, n_users=40, n_candidates=6)
        problem = MC2LSProblem(dataset, k=2, tau=0.4)
        reference = IQTSolver().solve(problem)
        whale = reference.selected[0]
        costs = {c.fid: 0.5 for c in dataset.candidates}
        costs[whale] = 5.0
        solver = BudgetedGreedySolver(costs, budget=5.0)
        result = solver.solve(problem)
        table = result.table
        # whichever arm won, it must not be worse than the whale alone
        assert result.objective >= cinf_group(table, [whale]) - 1e-9

    def test_unaffordable_everything(self, small_instance):
        costs = uniform_costs(small_instance, 100.0)
        solver = BudgetedGreedySolver(costs, budget=5.0)
        result = solver.solve(MC2LSProblem(small_instance, k=2, tau=0.5))
        assert result.selected == ()
        assert result.objective == 0.0

    def test_objective_matches_group_value(self, small_instance):
        solver = BudgetedGreedySolver(uniform_costs(small_instance), budget=4.0)
        result = solver.solve(MC2LSProblem(small_instance, k=2, tau=0.5))
        assert result.objective == pytest.approx(
            cinf_group(result.table, list(result.selected))
        )
