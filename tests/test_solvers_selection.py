"""Unit tests for the greedy selection phase (eager and lazy/CELF)."""

import numpy as np
import pytest

from repro.competition import InfluenceTable, cinf_group
from repro.exceptions import SolverError
from repro.solvers import greedy_select, lazy_greedy_select


@pytest.fixture
def paper_table() -> InfluenceTable:
    """Examples 1/3/4 of the paper."""
    return InfluenceTable.from_mappings(
        omega_c={1: {1, 2}, 2: {2, 4}, 3: {1, 3}},
        f_o={1: {1}, 2: {1, 2}, 3: set(), 4: {2}},
    )


def random_table(seed, n_candidates=15, n_users=60, n_facilities=6):
    rng = np.random.default_rng(seed)
    omega = {
        cid: set(
            rng.choice(n_users, size=rng.integers(0, n_users // 2), replace=False).tolist()
        )
        for cid in range(n_candidates)
    }
    f_o = {
        uid: set(
            rng.choice(n_facilities, size=rng.integers(0, n_facilities), replace=False).tolist()
        )
        for uid in range(n_users)
    }
    return InfluenceTable.from_mappings(omega, f_o)


class TestGreedySelect:
    def test_paper_example_4(self, paper_table):
        """Greedy with k=2 selects c3 first, then c2 (Example 4)."""
        outcome = greedy_select(paper_table, [1, 2, 3], k=2)
        assert outcome.selected == (3, 2)
        assert outcome.gains[0] == pytest.approx(3.0 / 2.0)
        assert outcome.gains[1] == pytest.approx(5.0 / 6.0)
        assert outcome.objective == pytest.approx(cinf_group(paper_table, [2, 3]))

    def test_k_equals_n_selects_everything(self, paper_table):
        outcome = greedy_select(paper_table, [1, 2, 3], k=3)
        assert set(outcome.selected) == {1, 2, 3}

    def test_validation(self, paper_table):
        with pytest.raises(SolverError):
            greedy_select(paper_table, [1, 2, 3], k=0)
        with pytest.raises(SolverError):
            greedy_select(paper_table, [1, 2, 3], k=4)

    def test_gains_non_increasing(self):
        """Submodularity: greedy marginal gains never increase."""
        for seed in range(5):
            t = random_table(seed)
            outcome = greedy_select(t, list(range(15)), k=10)
            assert all(
                a >= b - 1e-12 for a, b in zip(outcome.gains, outcome.gains[1:])
            )

    def test_objective_equals_group_value(self):
        t = random_table(3)
        outcome = greedy_select(t, list(range(15)), k=5)
        assert outcome.objective == pytest.approx(
            cinf_group(t, list(outcome.selected))
        )

    def test_tie_break_smallest_id(self):
        t = InfluenceTable.from_mappings({5: {1}, 2: {2}, 9: {3}}, {})
        outcome = greedy_select(t, [5, 2, 9], k=1)
        assert outcome.selected == (2,)

    def test_candidate_with_no_users(self):
        t = InfluenceTable.from_mappings({1: {1, 2}, 2: set()}, {})
        outcome = greedy_select(t, [1, 2], k=2)
        assert outcome.selected == (1, 2)
        assert outcome.gains[1] == 0.0


class TestLazyGreedy:
    @pytest.mark.parametrize("seed", range(10))
    @pytest.mark.parametrize("k", [1, 5, 12])
    def test_matches_eager_greedy(self, seed, k):
        t = random_table(seed)
        eager = greedy_select(t, list(range(15)), k=k)
        lazy = lazy_greedy_select(t, list(range(15)), k=k)
        assert lazy.selected == eager.selected
        assert lazy.objective == pytest.approx(eager.objective)
        assert lazy.gains == pytest.approx(eager.gains)

    def test_fewer_evaluations_than_eager(self):
        t = random_table(42, n_candidates=60, n_users=300)
        eager = greedy_select(t, list(range(60)), k=15)
        lazy = lazy_greedy_select(t, list(range(60)), k=15)
        assert lazy.evaluations < eager.evaluations

    def test_validation(self):
        t = random_table(0)
        with pytest.raises(SolverError):
            lazy_greedy_select(t, [1], k=2)

    def test_paper_example(self, paper_table):
        outcome = lazy_greedy_select(paper_table, [1, 2, 3], k=2)
        assert outcome.selected == (3, 2)


class TestTableValidation:
    """Selection entry points reject tables naming unknown candidates."""

    def stale_table(self):
        # Candidate 99 exists in the table but not in the candidate list —
        # e.g. a table resolved against a stale candidate set.
        return InfluenceTable.from_mappings(
            omega_c={1: {1, 2}, 2: {2}, 99: {1}},
            f_o={1: set(), 2: {1}},
        )

    def test_greedy_select_rejects_unknown_candidates(self):
        with pytest.raises(SolverError, match="unknown candidates"):
            greedy_select(self.stale_table(), [1, 2], k=1)

    def test_lazy_greedy_rejects_unknown_candidates(self):
        with pytest.raises(SolverError, match="unknown candidates"):
            lazy_greedy_select(self.stale_table(), [1, 2], k=1)

    def test_coverage_kernel_rejects_unknown_candidates(self):
        from repro.solvers import coverage_select, run_selection

        with pytest.raises(SolverError, match="unknown candidates"):
            coverage_select(self.stale_table(), [1, 2], k=1)
        with pytest.raises(SolverError, match="unknown candidates"):
            run_selection(self.stale_table(), [1, 2], k=1, fast_select=False)

    def test_full_candidate_set_accepted(self):
        outcome = greedy_select(self.stale_table(), [1, 2, 99], k=1)
        assert len(outcome.selected) == 1
