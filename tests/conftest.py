"""Shared fixtures: small synthetic MC²LS instances."""

import numpy as np
import pytest

from repro.entities import MovingUser, SpatialDataset, candidate, existing


def build_instance(
    seed: int = 0,
    n_users: int = 30,
    n_candidates: int = 12,
    n_facilities: int = 8,
    r: int = 10,
    side: float = 25.0,
    spread: float = 1.5,
    clustered: bool = False,
) -> SpatialDataset:
    """A compact random instance exercising real pruning behaviour.

    With ``clustered=True`` users and facilities concentrate around a few
    hot spots (the New-York-like skew); otherwise everything is uniform
    (the California-like shape).
    """
    rng = np.random.default_rng(seed)
    if clustered:
        hotspots = rng.uniform(side * 0.2, side * 0.8, size=(3, 2))

        def draw_center():
            return hotspots[rng.integers(len(hotspots))] + rng.normal(0, side * 0.05, 2)

    else:

        def draw_center():
            return rng.uniform(2, side - 2, size=2)

    users = []
    for uid in range(n_users):
        pos = rng.normal(draw_center(), spread, size=(r, 2))
        users.append(MovingUser(uid, np.clip(pos, 0, side)))
    candidates = [
        candidate(i, *np.clip(draw_center(), 0, side)) for i in range(n_candidates)
    ]
    facilities = [
        existing(i, *np.clip(draw_center(), 0, side)) for i in range(n_facilities)
    ]
    return SpatialDataset.build(users, facilities, candidates, name=f"inst-{seed}")


@pytest.fixture
def small_instance() -> SpatialDataset:
    return build_instance(seed=1)


@pytest.fixture
def clustered_instance() -> SpatialDataset:
    return build_instance(seed=2, clustered=True)
