"""Tests for the streaming MC²LS session.

Core invariant: after ANY sequence of arrivals/departures/updates, the
session's table and greedy selection equal those of a batch solve over
the surviving population.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.entities import MovingUser
from repro.exceptions import SolverError
from repro.solvers import BaselineGreedySolver, MC2LSProblem
from repro.streaming import StreamingMC2LS
from tests.conftest import build_instance


@pytest.fixture
def base():
    return build_instance(seed=9, n_users=20, n_candidates=8, n_facilities=6)


def batch_reference(session):
    dataset = session.current_dataset()
    problem = MC2LSProblem(dataset, k=session.k, tau=session.tau, pf=session.pf)
    return BaselineGreedySolver().solve(problem)


class TestSessionBasics:
    def test_validation(self, base):
        with pytest.raises(SolverError):
            StreamingMC2LS(base.facilities, base.candidates, k=0)
        with pytest.raises(SolverError):
            StreamingMC2LS(base.facilities, base.candidates, k=99)

    def test_from_dataset_matches_batch(self, base):
        session = StreamingMC2LS.from_dataset(base, k=3, tau=0.5)
        assert len(session) == len(base.users)
        reference = batch_reference(session)
        outcome = session.current_selection()
        assert outcome.selected == reference.selected
        assert outcome.objective == pytest.approx(reference.objective)

    def test_duplicate_add_rejected(self, base):
        session = StreamingMC2LS.from_dataset(base, k=2, tau=0.5)
        with pytest.raises(SolverError):
            session.add_user(base.users[0])

    def test_remove_unknown_rejected(self, base):
        session = StreamingMC2LS.from_dataset(base, k=2, tau=0.5)
        with pytest.raises(SolverError):
            session.remove_user(9999)

    def test_contains_and_len(self, base):
        session = StreamingMC2LS.from_dataset(base, k=2, tau=0.5)
        uid = base.users[0].uid
        assert uid in session
        session.remove_user(uid)
        assert uid not in session
        assert len(session) == len(base.users) - 1

    def test_empty_session_dataset_rejected(self, base):
        session = StreamingMC2LS(base.facilities, base.candidates, k=2, tau=0.5)
        with pytest.raises(SolverError):
            session.current_dataset()


class TestIncrementalEquivalence:
    def test_after_departures(self, base):
        session = StreamingMC2LS.from_dataset(base, k=3, tau=0.5)
        for uid in [u.uid for u in base.users[:7]]:
            session.remove_user(uid)
        reference = batch_reference(session)
        outcome = session.current_selection()
        assert outcome.selected == reference.selected
        assert outcome.objective == pytest.approx(reference.objective)

    def test_after_arrivals(self, base):
        session = StreamingMC2LS.from_dataset(base, k=3, tau=0.5)
        rng = np.random.default_rng(0)
        for uid in range(1000, 1010):
            positions = rng.normal(rng.uniform(2, 23, 2), 1.0, size=(8, 2))
            session.add_user(MovingUser(uid, np.clip(positions, 0, 25)))
        reference = batch_reference(session)
        assert session.current_selection().selected == reference.selected

    def test_after_update(self, base):
        session = StreamingMC2LS.from_dataset(base, k=3, tau=0.5)
        user = base.users[0]
        moved = MovingUser(user.uid, user.positions + 3.0)
        session.update_user(moved)
        reference = batch_reference(session)
        assert session.current_selection().selected == reference.selected

    def test_remove_then_readd_is_identity(self, base):
        session = StreamingMC2LS.from_dataset(base, k=3, tau=0.5)
        before = session.current_selection()
        user = session.remove_user(base.users[3].uid)
        session.add_user(user)
        after = session.current_selection()
        assert before.selected == after.selected
        assert before.objective == pytest.approx(after.objective)

    @given(events=st.lists(st.integers(0, 29), min_size=1, max_size=25))
    @settings(max_examples=15, deadline=None)
    def test_random_event_stream(self, events):
        """Arrivals/departures in any order keep the session consistent."""
        base = build_instance(seed=11, n_users=12, n_candidates=6, n_facilities=4)
        pool = {u.uid: u for u in base.users}
        extra_rng = np.random.default_rng(42)
        for uid in range(100, 118):
            positions = extra_rng.normal(extra_rng.uniform(2, 23, 2), 1.2, (6, 2))
            pool[uid] = MovingUser(uid, np.clip(positions, 0, 25))
        uids = sorted(pool)

        session = StreamingMC2LS.from_dataset(base, k=3, tau=0.5)
        present = {u.uid for u in base.users}
        for event in events:
            uid = uids[event]
            if uid in present:
                if len(present) > 1:
                    session.remove_user(uid)
                    present.discard(uid)
            else:
                session.add_user(pool[uid])
                present.add(uid)
        reference = batch_reference(session)
        outcome = session.current_selection()
        assert outcome.selected == reference.selected
        assert outcome.objective == pytest.approx(reference.objective)


class TestEventAccounting:
    def test_events_counted(self, base):
        session = StreamingMC2LS.from_dataset(base, k=2, tau=0.5)
        n = session.events_processed
        session.remove_user(base.users[0].uid)
        assert session.events_processed == n + 1
        session.update_user(base.users[1])
        assert session.events_processed == n + 2


class TestUpdateExceptionSafety:
    """A failed ``update_user`` must not corrupt the session."""

    def test_update_unknown_rejected(self, base):
        session = StreamingMC2LS.from_dataset(base, k=2, tau=0.5)
        with pytest.raises(SolverError):
            session.update_user(MovingUser(999, np.full((2, 2), 5.0)))

    @pytest.mark.parametrize("failing_pruner", ["_pruner_c", "_pruner_f"])
    def test_failed_update_restores_state(self, base, failing_pruner):
        """Re-classification raising mid-update leaves the session intact.

        Parametrised over both classification stages: failing in the
        candidate pruner exercises the earliest partial state (only the
        user record written), failing in the facility pruner the deepest
        (coverage and reverse index already recorded).
        """
        session = StreamingMC2LS.from_dataset(base, k=3, tau=0.5)
        user = base.users[2]
        before_sel = session.current_selection()
        before_events = session.events_processed
        before_table = session.table()

        pruner = getattr(session, failing_pruner)
        original = pruner.classify_user

        def exploding(u):
            if u.uid == user.uid:
                raise RuntimeError("classifier exploded")
            return original(u)

        pruner.classify_user = exploding
        moved = MovingUser(user.uid, user.positions + 2.0)
        try:
            with pytest.raises(RuntimeError, match="classifier exploded"):
                session.update_user(moved)
        finally:
            pruner.classify_user = original

        # The user survives with its pre-update history and relationships.
        assert user.uid in session
        assert session.events_processed == before_events
        after_table = session.table()
        assert after_table.omega_c == before_table.omega_c
        assert after_table.f_o == before_table.f_o
        restored = session.current_dataset().users[2]
        assert restored.uid == user.uid
        assert np.array_equal(restored.positions, user.positions)
        assert session.current_selection().selected == before_sel.selected

        # And the session still works: the same update now succeeds.
        session.update_user(moved)
        assert session.events_processed == before_events + 1


class TestDeltaLog:
    """Net-churn accounting at the streaming -> service seam."""

    def _drained(self, base, k=3):
        session = StreamingMC2LS.from_dataset(base, k=k, tau=0.5)
        session.drain_delta("hash-0")  # seal the bootstrap churn
        return session

    def test_bootstrap_adds_are_pending(self, base):
        session = StreamingMC2LS.from_dataset(base, k=3, tau=0.5)
        delta = session.pending_delta()
        assert delta.parent_hash is None
        assert delta.added == tuple(sorted(u.uid for u in base.users))
        assert delta.removed == () and delta.updated == ()

    def test_collapse_add_then_remove_nets_out(self, base):
        session = self._drained(base)
        newcomer = MovingUser(7000, base.users[0].positions + 1.0)
        session.add_user(newcomer)
        session.remove_user(7000)
        assert not session.pending_delta()
        assert len(session.pending_delta()) == 0

    def test_collapse_remove_then_readd_is_updated(self, base):
        session = self._drained(base)
        uid = base.users[3].uid
        user = session._users[uid]
        session.remove_user(uid)
        session.add_user(user)
        delta = session.pending_delta()
        assert delta.updated == (uid,)
        assert delta.added == () and delta.removed == ()

    def test_update_marks_updated_and_dirty_doomed_views(self, base):
        session = self._drained(base)
        uid = base.users[1].uid
        session.update_user(MovingUser(uid, session._users[uid].positions + 0.5))
        session.add_user(MovingUser(7001, base.users[0].positions))
        session.remove_user(base.users[2].uid)
        delta = session.pending_delta()
        assert delta.updated == (uid,)
        assert delta.added == (7001,)
        assert delta.removed == (base.users[2].uid,)
        assert delta.dirty == tuple(sorted((uid, 7001)))
        assert delta.doomed == tuple(sorted((uid, base.users[2].uid)))
        assert len(delta) == 3 and bool(delta)

    def test_update_of_freshly_added_user_stays_added(self, base):
        session = self._drained(base)
        session.add_user(MovingUser(7002, base.users[0].positions))
        session.update_user(MovingUser(7002, base.users[0].positions + 1.0))
        delta = session.pending_delta()
        assert delta.added == (7002,)
        assert delta.updated == ()

    def test_drain_advances_the_mark_and_clears(self, base):
        session = self._drained(base)
        uid = base.users[0].uid
        session.update_user(MovingUser(uid, session._users[uid].positions + 0.5))
        first = session.drain_delta("hash-1")
        assert first.parent_hash == "hash-0"
        assert first.updated == (uid,)
        assert not session.pending_delta()
        assert session.pending_delta().parent_hash == "hash-1"

    def test_absent_uid_mutations_leave_the_log_untouched(self, base):
        session = self._drained(base)
        before = session.pending_delta()
        with pytest.raises(SolverError):
            session.remove_user(424242)
        with pytest.raises(SolverError):
            session.update_user(MovingUser(424242, base.users[0].positions))
        assert session.pending_delta() == before

    def test_failed_update_restores_the_delta_entry(self, base):
        session = self._drained(base)
        uid = base.users[4].uid
        original = session._pruner_f.classify_user

        def exploding(u):
            if u.uid == uid:
                raise RuntimeError("classifier exploded")
            return original(u)

        before = session.pending_delta()
        session._pruner_f.classify_user = exploding
        try:
            with pytest.raises(RuntimeError):
                session.update_user(
                    MovingUser(uid, session._users[uid].positions + 1.0)
                )
        finally:
            session._pruner_f.classify_user = original
        # The remove/add pair inside the failed update must not leak a
        # phantom "removed"/"updated" entry into the next snapshot patch.
        assert session.pending_delta() == before

    def test_snapshot_seam_chains_content_hashes(self, base):
        pytest.importorskip("repro.service")
        session = StreamingMC2LS.from_dataset(base, k=3, tau=0.5)
        snap1 = session.snapshot()
        assert snap1.delta is not None
        assert snap1.delta.parent_hash is None  # nothing published before
        uid = base.users[0].uid
        session.update_user(MovingUser(uid, session._users[uid].positions + 0.5))
        snap2 = session.snapshot()
        assert snap2.delta.parent_hash == snap1.content_hash
        assert snap2.delta.updated == (uid,)
