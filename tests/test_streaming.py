"""Tests for the streaming MC²LS session.

Core invariant: after ANY sequence of arrivals/departures/updates, the
session's table and greedy selection equal those of a batch solve over
the surviving population.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.entities import MovingUser
from repro.exceptions import SolverError
from repro.solvers import BaselineGreedySolver, MC2LSProblem
from repro.streaming import StreamingMC2LS
from tests.conftest import build_instance


@pytest.fixture
def base():
    return build_instance(seed=9, n_users=20, n_candidates=8, n_facilities=6)


def batch_reference(session):
    dataset = session.current_dataset()
    problem = MC2LSProblem(dataset, k=session.k, tau=session.tau, pf=session.pf)
    return BaselineGreedySolver().solve(problem)


class TestSessionBasics:
    def test_validation(self, base):
        with pytest.raises(SolverError):
            StreamingMC2LS(base.facilities, base.candidates, k=0)
        with pytest.raises(SolverError):
            StreamingMC2LS(base.facilities, base.candidates, k=99)

    def test_from_dataset_matches_batch(self, base):
        session = StreamingMC2LS.from_dataset(base, k=3, tau=0.5)
        assert len(session) == len(base.users)
        reference = batch_reference(session)
        outcome = session.current_selection()
        assert outcome.selected == reference.selected
        assert outcome.objective == pytest.approx(reference.objective)

    def test_duplicate_add_rejected(self, base):
        session = StreamingMC2LS.from_dataset(base, k=2, tau=0.5)
        with pytest.raises(SolverError):
            session.add_user(base.users[0])

    def test_remove_unknown_rejected(self, base):
        session = StreamingMC2LS.from_dataset(base, k=2, tau=0.5)
        with pytest.raises(SolverError):
            session.remove_user(9999)

    def test_contains_and_len(self, base):
        session = StreamingMC2LS.from_dataset(base, k=2, tau=0.5)
        uid = base.users[0].uid
        assert uid in session
        session.remove_user(uid)
        assert uid not in session
        assert len(session) == len(base.users) - 1

    def test_empty_session_dataset_rejected(self, base):
        session = StreamingMC2LS(base.facilities, base.candidates, k=2, tau=0.5)
        with pytest.raises(SolverError):
            session.current_dataset()


class TestIncrementalEquivalence:
    def test_after_departures(self, base):
        session = StreamingMC2LS.from_dataset(base, k=3, tau=0.5)
        for uid in [u.uid for u in base.users[:7]]:
            session.remove_user(uid)
        reference = batch_reference(session)
        outcome = session.current_selection()
        assert outcome.selected == reference.selected
        assert outcome.objective == pytest.approx(reference.objective)

    def test_after_arrivals(self, base):
        session = StreamingMC2LS.from_dataset(base, k=3, tau=0.5)
        rng = np.random.default_rng(0)
        for uid in range(1000, 1010):
            positions = rng.normal(rng.uniform(2, 23, 2), 1.0, size=(8, 2))
            session.add_user(MovingUser(uid, np.clip(positions, 0, 25)))
        reference = batch_reference(session)
        assert session.current_selection().selected == reference.selected

    def test_after_update(self, base):
        session = StreamingMC2LS.from_dataset(base, k=3, tau=0.5)
        user = base.users[0]
        moved = MovingUser(user.uid, user.positions + 3.0)
        session.update_user(moved)
        reference = batch_reference(session)
        assert session.current_selection().selected == reference.selected

    def test_remove_then_readd_is_identity(self, base):
        session = StreamingMC2LS.from_dataset(base, k=3, tau=0.5)
        before = session.current_selection()
        user = session.remove_user(base.users[3].uid)
        session.add_user(user)
        after = session.current_selection()
        assert before.selected == after.selected
        assert before.objective == pytest.approx(after.objective)

    @given(events=st.lists(st.integers(0, 29), min_size=1, max_size=25))
    @settings(max_examples=15, deadline=None)
    def test_random_event_stream(self, events):
        """Arrivals/departures in any order keep the session consistent."""
        base = build_instance(seed=11, n_users=12, n_candidates=6, n_facilities=4)
        pool = {u.uid: u for u in base.users}
        extra_rng = np.random.default_rng(42)
        for uid in range(100, 118):
            positions = extra_rng.normal(extra_rng.uniform(2, 23, 2), 1.2, (6, 2))
            pool[uid] = MovingUser(uid, np.clip(positions, 0, 25))
        uids = sorted(pool)

        session = StreamingMC2LS.from_dataset(base, k=3, tau=0.5)
        present = {u.uid for u in base.users}
        for event in events:
            uid = uids[event]
            if uid in present:
                if len(present) > 1:
                    session.remove_user(uid)
                    present.discard(uid)
            else:
                session.add_user(pool[uid])
                present.add(uid)
        reference = batch_reference(session)
        outcome = session.current_selection()
        assert outcome.selected == reference.selected
        assert outcome.objective == pytest.approx(reference.objective)


class TestEventAccounting:
    def test_events_counted(self, base):
        session = StreamingMC2LS.from_dataset(base, k=2, tau=0.5)
        n = session.events_processed
        session.remove_user(base.users[0].uid)
        assert session.events_processed == n + 1
        session.update_user(base.users[1])
        assert session.events_processed == n + 2


class TestUpdateExceptionSafety:
    """A failed ``update_user`` must not corrupt the session."""

    def test_update_unknown_rejected(self, base):
        session = StreamingMC2LS.from_dataset(base, k=2, tau=0.5)
        with pytest.raises(SolverError):
            session.update_user(MovingUser(999, np.full((2, 2), 5.0)))

    @pytest.mark.parametrize("failing_pruner", ["_pruner_c", "_pruner_f"])
    def test_failed_update_restores_state(self, base, failing_pruner):
        """Re-classification raising mid-update leaves the session intact.

        Parametrised over both classification stages: failing in the
        candidate pruner exercises the earliest partial state (only the
        user record written), failing in the facility pruner the deepest
        (coverage and reverse index already recorded).
        """
        session = StreamingMC2LS.from_dataset(base, k=3, tau=0.5)
        user = base.users[2]
        before_sel = session.current_selection()
        before_events = session.events_processed
        before_table = session.table()

        pruner = getattr(session, failing_pruner)
        original = pruner.classify_user

        def exploding(u):
            if u.uid == user.uid:
                raise RuntimeError("classifier exploded")
            return original(u)

        pruner.classify_user = exploding
        moved = MovingUser(user.uid, user.positions + 2.0)
        try:
            with pytest.raises(RuntimeError, match="classifier exploded"):
                session.update_user(moved)
        finally:
            pruner.classify_user = original

        # The user survives with its pre-update history and relationships.
        assert user.uid in session
        assert session.events_processed == before_events
        after_table = session.table()
        assert after_table.omega_c == before_table.omega_c
        assert after_table.f_o == before_table.f_o
        restored = session.current_dataset().users[2]
        assert restored.uid == user.uid
        assert np.array_equal(restored.positions, user.positions)
        assert session.current_selection().selected == before_sel.selected

        # And the session still works: the same update now succeeds.
        session.update_user(moved)
        assert session.events_processed == before_events + 1
