"""Snapshot identity: content hashing, supersession, streaming bridge."""

import numpy as np

from repro.entities import MovingUser
from repro.service import DatasetSnapshot, dataset_content_hash
from repro.streaming import StreamingMC2LS

from .conftest import build_instance


class TestContentHash:
    def test_deterministic(self):
        a = build_instance(seed=3)
        b = build_instance(seed=3)
        assert dataset_content_hash(a) == dataset_content_hash(b)

    def test_sensitive_to_user_positions(self):
        dataset = build_instance(seed=3)
        moved = dataset.users[0]
        shifted = MovingUser(moved.uid, moved.positions + 1e-9)
        mutated = dataset.with_users((shifted,) + dataset.users[1:])
        assert dataset_content_hash(mutated) != dataset_content_hash(dataset)

    def test_sensitive_to_facility_set(self):
        dataset = build_instance(seed=3)
        fewer = dataset.with_facilities(dataset.facilities[:-1])
        assert dataset_content_hash(fewer) != dataset_content_hash(dataset)

    def test_sensitive_to_candidate_order_independent_ids(self):
        dataset = build_instance(seed=3)
        # Same candidates, reversed order: hashing is order-sensitive by
        # design (the dataset tuple *is* part of the identity).
        reordered = dataset.with_candidates(tuple(reversed(dataset.candidates)))
        assert dataset_content_hash(reordered) != dataset_content_hash(dataset)


class TestSnapshot:
    def test_wraps_and_warms(self):
        dataset = build_instance(seed=4)
        snap = DatasetSnapshot(dataset, version=7, label="test")
        assert snap.version == 7
        assert snap.arena is dataset.arena
        assert not snap.superseded
        assert snap.content_hash == dataset_content_hash(dataset)
        assert "v7" in snap.describe()

    def test_supersede_idempotent(self):
        snap = DatasetSnapshot(build_instance(seed=4))
        snap.supersede()
        snap.supersede()
        assert snap.superseded

    def test_from_streaming_versions_by_event_count(self):
        dataset = build_instance(seed=5)
        session = StreamingMC2LS.from_dataset(dataset, k=3)
        snap = session.snapshot()
        assert snap.version == session.events_processed
        assert snap.content_hash == dataset_content_hash(session.current_dataset())
        session.remove_user(dataset.users[0].uid)
        snap2 = session.snapshot()
        assert snap2.version == snap.version + 1
        assert snap2.content_hash != snap.content_hash

    def test_streaming_roundtrip_matches_batch_hash(self):
        # A session loaded from a dataset reproduces the same population,
        # so its snapshot hash equals the batch dataset's hash.
        dataset = build_instance(seed=6)
        session = StreamingMC2LS.from_dataset(dataset, k=2)
        assert (
            dataset_content_hash(session.current_dataset())
            == dataset_content_hash(dataset)
        )
