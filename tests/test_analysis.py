"""Tests for the post-solve analysis utilities."""

import pytest

from repro.analysis import (
    contested_share,
    coverage_jaccard,
    drop_one_regret,
    marginal_curve,
    redundancy_index,
    selection_jaccard,
    site_reports,
)
from repro.competition import InfluenceTable, cinf_group
from repro.solvers import IQTSolver, MC2LSProblem


@pytest.fixture
def table():
    return InfluenceTable.from_mappings(
        omega_c={1: {1, 2}, 2: {2, 4}, 3: {1, 3}},
        f_o={1: {1}, 2: {1, 2}, 3: set(), 4: {2}},
    )


class TestJaccard:
    def test_selection_jaccard(self):
        assert selection_jaccard([1, 2], [1, 2]) == 1.0
        assert selection_jaccard([1, 2], [3, 4]) == 0.0
        assert selection_jaccard([1, 2, 3], [2, 3, 4]) == pytest.approx(0.5)
        assert selection_jaccard([], []) == 1.0

    def test_coverage_jaccard_sees_through_site_identity(self, table):
        # c1 covers {1,2}; c2 covers {2,4}: disjoint sites, overlapping users
        assert coverage_jaccard(table, [1], [2]) == pytest.approx(1 / 3)
        assert coverage_jaccard(table, [], []) == 1.0


class TestSiteReports:
    def test_exclusive_and_values(self, table):
        reports = {r.cid: r for r in site_reports(table, [1, 3])}
        # c1 covers {1,2}; c3 covers {1,3} -> exclusive(c1)={2}, exclusive(c3)={3}
        assert set(reports[1].exclusive) == {2}
        assert set(reports[3].exclusive) == {3}
        assert reports[3].exclusive_value == pytest.approx(1.0)  # user 3 uncontested
        assert reports[1].value == pytest.approx(1 / 2 + 1 / 3)

    def test_mean_competition(self, table):
        reports = {r.cid: r for r in site_reports(table, [2])}
        # c2 covers users 2 (|F|=2) and 4 (|F|=1)
        assert reports[2].mean_competition == pytest.approx(1.5)

    def test_empty_site(self):
        t = InfluenceTable.from_mappings({1: set()}, {})
        report = site_reports(t, [1])[0]
        assert report.value == 0.0
        assert report.mean_competition == 0.0


class TestRedundancy:
    def test_disjoint_is_zero(self):
        t = InfluenceTable.from_mappings({1: {1}, 2: {2}}, {})
        assert redundancy_index(t, [1, 2]) == 0.0

    def test_full_overlap(self):
        t = InfluenceTable.from_mappings({1: {1, 2}, 2: {1, 2}}, {})
        assert redundancy_index(t, [1, 2]) == pytest.approx(0.5)

    def test_empty(self):
        t = InfluenceTable.from_mappings({1: set()}, {})
        assert redundancy_index(t, [1]) == 0.0


class TestMarginalCurve:
    def test_matches_cinf_prefixes(self, table):
        curve = marginal_curve(table, [3, 2, 1])
        assert curve[0] == (1, pytest.approx(cinf_group(table, [3])))
        assert curve[2] == (3, pytest.approx(cinf_group(table, [3, 2, 1])))
        values = [v for _, v in curve]
        assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))


class TestRegretAndContested:
    def test_drop_one_regret(self, table):
        regret = drop_one_regret(table, [1, 3])
        # dropping c3 loses users {3} entirely and keeps 1 via c1
        assert regret[3] == pytest.approx(1.0)
        # dropping c1 loses only user 2 (user 1 still covered by c3)
        assert regret[1] == pytest.approx(1 / 3)

    def test_contested_share(self, table):
        # covered by {1,3}: users 1 (contested), 2 (contested), 3 (not)
        assert contested_share(table, [1, 3]) == pytest.approx(2 / 3)
        assert contested_share(table, []) == 0.0


class TestOnRealSolve:
    def test_analysis_pipeline(self, small_instance):
        result = IQTSolver().solve(MC2LSProblem(small_instance, k=4, tau=0.5))
        reports = site_reports(result.table, result.selected)
        assert len(reports) == 4
        total_exclusive = sum(r.exclusive_value for r in reports)
        assert total_exclusive <= result.objective + 1e-9
        regret = drop_one_regret(result.table, result.selected)
        for cid, r in regret.items():
            assert r >= -1e-12
        assert 0.0 <= redundancy_index(result.table, result.selected) <= 1.0
        assert 0.0 <= contested_share(result.table, result.selected) <= 1.0
