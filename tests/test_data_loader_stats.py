"""Tests for the SNAP check-in loader and the dataset statistics."""

import numpy as np
import pytest

from repro.data import (
    LatLonBox,
    NEW_YORK_BOX,
    compute_stats,
    load_checkins,
    mbr_overlap_fraction,
)
from repro.data.stats import _gini
from repro.entities import MovingUser, SpatialDataset, candidate
from repro.exceptions import DataError


@pytest.fixture
def checkin_file(tmp_path):
    """A miniature Brightkite-format dump around New York."""
    rows = [
        # user 0: three NYC check-ins at two POIs
        "0\t2010-10-17T01:48:53Z\t40.7128\t-74.0060\tpoi_a",
        "0\t2010-10-16T06:02:04Z\t40.7300\t-73.9900\tpoi_b",
        "0\t2010-10-12T23:54:10Z\t40.7000\t-74.0100\tpoi_a",
        # user 1: two NYC check-ins
        "1\t2010-10-12T00:21:28Z\t40.7500\t-73.9800\tpoi_c",
        "1\t2010-10-11T20:21:20Z\t40.7600\t-73.9700\tpoi_d",
        # user 2: one NYC check-in only -> trimmed at min_positions=2
        "2\t2010-10-10T00:00:00Z\t40.8000\t-73.9500\tpoi_e",
        # user 3: outside the NY box (Los Angeles)
        "3\t2010-10-10T00:00:00Z\t34.0522\t-118.2437\tpoi_f",
        "3\t2010-10-11T00:00:00Z\t34.0600\t-118.2500\tpoi_g",
        # user 4: missing fix (0, 0) rows are skipped
        "4\t2010-10-10T00:00:00Z\t0.0\t0.0\tpoi_h",
        "4\t2010-10-10T01:00:00Z\t40.7200\t-74.0000\tpoi_i",
        "4\t2010-10-10T02:00:00Z\t40.7210\t-74.0010\tpoi_i",
    ]
    path = tmp_path / "checkins.txt"
    path.write_text("\n".join(rows) + "\n")
    return path


class TestLoader:
    def test_basic_parse(self, checkin_file):
        data = load_checkins(checkin_file)
        # users 0, 1, 3 and 4 survive (user 2 trimmed)
        assert len(data.users) == 4
        by_count = sorted(u.r for u in data.users)
        assert by_count == [2, 2, 2, 3]

    def test_bbox_filter(self, checkin_file):
        data = load_checkins(checkin_file, bbox=NEW_YORK_BOX)
        assert len(data.users) == 3  # LA user drops out
        # everything projects within ~60 km of the NYC centroid
        for u in data.users:
            assert np.abs(u.positions).max() < 60

    def test_zero_zero_rows_skipped(self, checkin_file):
        data = load_checkins(checkin_file)
        uid4 = [u for u in data.users if u.r == 2 and u.mbr.width < 0.5]
        assert uid4  # user 4 kept with exactly its two real fixes

    def test_max_users_keeps_most_active(self, checkin_file):
        data = load_checkins(checkin_file, max_users=1)
        assert len(data.users) == 1
        assert data.users[0].r == 3  # user 0 has the most check-ins

    def test_missing_file(self, tmp_path):
        with pytest.raises(DataError):
            load_checkins(tmp_path / "nope.txt")

    def test_malformed_row(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0\tonly\tthree\n")
        with pytest.raises(DataError):
            load_checkins(path)

    def test_unparseable_floats(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0\t2010\tnot_a_float\t-74.0\tpoi\n")
        with pytest.raises(DataError):
            load_checkins(path)

    def test_nothing_survives(self, tmp_path):
        path = tmp_path / "single.txt"
        path.write_text("0\t2010\t40.7\t-74.0\tpoi\n")
        with pytest.raises(DataError):
            load_checkins(path, min_positions=2)

    def test_dataset_sampling(self, checkin_file):
        data = load_checkins(checkin_file)
        ds = data.dataset(n_candidates=2, n_facilities=2, seed=0)
        assert len(ds.candidates) == 2
        assert len(ds.facilities) == 2
        with pytest.raises(DataError):
            data.dataset(n_candidates=100, n_facilities=100)

    def test_bbox_validation(self):
        with pytest.raises(DataError):
            LatLonBox(50, 0, 40, 10)


class TestStats:
    def make_dataset(self, spread, name="x"):
        rng = np.random.default_rng(0)
        users = [
            MovingUser(uid, rng.normal(rng.uniform(0, 50, 2), spread, size=(10, 2)))
            for uid in range(30)
        ]
        return SpatialDataset.build(users, [], [candidate(0, 25, 25)], name=name)

    def test_basic_fields(self):
        ds = self.make_dataset(spread=2.0)
        stats = compute_stats(ds)
        assert stats.n_users == 30
        assert stats.n_positions == 300
        assert stats.mean_positions_per_user == pytest.approx(10.0)
        assert stats.max_positions_per_user == 10
        assert stats.positions_per_km2 > 0
        assert 0 <= stats.gini_cell_occupancy <= 1

    def test_bigger_spread_bigger_mbr_ratio(self):
        tight = compute_stats(self.make_dataset(spread=0.5))
        wide = compute_stats(self.make_dataset(spread=5.0))
        assert wide.mean_mbr_area_ratio > tight.mean_mbr_area_ratio

    def test_as_row(self):
        row = compute_stats(self.make_dataset(2.0, name="toy")).as_row()
        assert row["dataset"] == "toy"
        assert row["users"] == 30

    def test_gini_extremes(self):
        assert _gini(np.array([5, 5, 5, 5])) == pytest.approx(0.0, abs=1e-9)
        concentrated = np.zeros(100)
        concentrated[0] = 1000
        assert _gini(concentrated) > 0.95
        assert _gini(np.array([])) == 0.0
        assert _gini(np.zeros(5)) == 0.0

    def test_mbr_overlap_fraction(self):
        # Everyone shares the same activity area -> overlap ~ 1.
        rng = np.random.default_rng(1)
        users = [
            MovingUser(uid, rng.uniform(0, 10, size=(5, 2))) for uid in range(20)
        ]
        ds = SpatialDataset.build(users, [], [candidate(0, 5, 5)])
        assert mbr_overlap_fraction(ds) > 0.8
        # Far-apart users -> overlap ~ 0.
        users = [
            MovingUser(uid, np.full((3, 2), uid * 100.0) + rng.normal(0, 0.1, (3, 2)))
            for uid in range(10)
        ]
        ds = SpatialDataset.build(users, [], [candidate(0, 0, 0)])
        assert mbr_overlap_fraction(ds) < 0.2

    def test_single_user_overlap_zero(self):
        ds = SpatialDataset.build(
            [MovingUser(0, np.zeros((2, 2)))], [], [candidate(0, 0, 0)]
        )
        assert mbr_overlap_fraction(ds) == 0.0
