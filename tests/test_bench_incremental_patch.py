"""Smoke test: the incremental-patch benchmark must run and record.

Invokes ``benchmarks/bench_incremental_patch.py --smoke`` as a
subprocess and asserts the patch/fresh identity check is green and the
patch beats a full resolve at low churn.  The smoke run writes to a
temporary path so the committed full-scale
``BENCH_incremental_patch.json`` at the repo root is not overwritten by
test runs.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_smoke_records_trajectory_point(tmp_path):
    out_path = tmp_path / "BENCH_incremental_patch.json"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.run(
        [
            sys.executable,
            str(REPO_ROOT / "benchmarks" / "bench_incremental_patch.py"),
            "--smoke",
            "--out",
            str(out_path),
        ],
        capture_output=True,
        text=True,
        timeout=300,
        cwd=REPO_ROOT,
        env=env,
    )
    assert proc.returncode == 0, proc.stderr
    assert out_path.exists()
    payload = json.loads(out_path.read_text())
    assert payload["benchmark"] == "incremental_patch"
    assert payload["results_identical"] is True
    assert payload["rows"], "no churn rates measured"
    for row in payload["rows"]:
        assert row["identical"] is True
    # Even at smoke scale the low-churn patch must clearly beat a full
    # resolve (the full-scale acceptance floor is 5x; smoke allows 2x
    # headroom for tiny instances and noisy CI machines).
    assert payload["min_speedup_at_5pct"] >= 2.0


def test_committed_trajectory_point_is_full_scale():
    """The recorded repo-root point meets the acceptance floor."""
    payload = json.loads(
        (REPO_ROOT / "BENCH_incremental_patch.json").read_text()
    )
    assert payload["n_users"] >= 800
    assert payload["n_candidates"] >= 60
    assert payload["results_identical"] is True
    rates = [row["churn_rate"] for row in payload["rows"]]
    assert min(rates) <= 0.05 and max(rates) >= 0.10
    assert payload["min_speedup_at_5pct"] >= 5.0
