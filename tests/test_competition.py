"""Unit tests for the competition layer (evenly split + extensions)."""

import numpy as np
import pytest

from repro.competition import (
    DistanceWeightedModel,
    EvenlySplitModel,
    InfluenceTable,
    cinf_candidate,
    cinf_group,
    cinf_user,
    covered_users,
)
from repro.entities import MovingUser, existing
from repro.exceptions import SolverError
from repro.influence import paper_default_pf


@pytest.fixture
def paper_example_table() -> InfluenceTable:
    """The influence relationships of the paper's Examples 1/3/4.

    c1 -> {o1, o2}, c2 -> {o2, o4}, c3 -> {o1, o3};
    f1 -> {o1, o2}, f2 -> {o2, o4}.
    """
    return InfluenceTable.from_mappings(
        omega_c={1: {1, 2}, 2: {2, 4}, 3: {1, 3}},
        f_o={1: {1}, 2: {1, 2}, 3: set(), 4: {2}},
    )


class TestInfluenceTable:
    def test_competitor_count(self, paper_example_table):
        t = paper_example_table
        assert t.competitor_count(1) == 1
        assert t.competitor_count(2) == 2
        assert t.competitor_count(3) == 0
        assert t.competitor_count(99) == 0  # untracked user

    def test_influenced_users(self, paper_example_table):
        assert paper_example_table.influenced_users() == frozenset({1, 2, 3, 4})

    def test_validate_against(self, paper_example_table):
        paper_example_table.validate_against({1, 2, 3})
        with pytest.raises(SolverError):
            paper_example_table.validate_against({1, 2})

    def test_from_mappings_copies(self):
        omega = {1: {1}}
        t = InfluenceTable.from_mappings(omega, {})
        omega[1].add(2)
        assert t.omega_c[1] == {1}


class TestEvenlySplitFunctions:
    def test_paper_example_3_group_values(self, paper_example_table):
        """cinf({c1,c2}) = 4/3 and cinf({c1,c3}) = 11/6 (Example 3)."""
        t = paper_example_table
        assert cinf_group(t, [1, 2]) == pytest.approx(4.0 / 3.0)
        assert cinf_group(t, [1, 3]) == pytest.approx(11.0 / 6.0)

    def test_paper_example_4_candidate_values(self, paper_example_table):
        """cinf(c1) = 5/6, cinf(c2) = 5/6, cinf(c3) = 3/2 (Example 4)."""
        t = paper_example_table
        assert cinf_candidate(t, 1) == pytest.approx(5.0 / 6.0)
        assert cinf_candidate(t, 2) == pytest.approx(5.0 / 6.0)
        assert cinf_candidate(t, 3) == pytest.approx(3.0 / 2.0)

    def test_paper_example_4_second_round(self, paper_example_table):
        """After selecting c3, the marginal gains on Ω \\ {o1, o3}.

        cinf(c2) = 1/3 + 1/2 = 5/6 matches the paper.  For c1 the paper
        prints 1/2, but with its own F_{o2} = {f1, f2} the remaining user o2
        is worth 1/(2+1) = 1/3 — the printed 1/2 is a typo (it contradicts
        the 5/6 derived for c2 from the same F_{o2}).  The selection outcome
        (c2 wins the second round) is identical either way.
        """
        t = paper_example_table
        captured = covered_users(t, [3])
        assert captured == {1, 3}
        assert cinf_candidate(t, 1, excluded=captured) == pytest.approx(1.0 / 3.0)
        assert cinf_candidate(t, 2, excluded=captured) == pytest.approx(5.0 / 6.0)

    def test_cinf_user(self, paper_example_table):
        assert cinf_user(paper_example_table, 3) == 1.0
        assert cinf_user(paper_example_table, 2) == pytest.approx(1.0 / 3.0)

    def test_empty_candidate_is_zero(self, paper_example_table):
        assert cinf_candidate(paper_example_table, 42) == 0.0

    def test_group_counts_overlap_once(self):
        t = InfluenceTable.from_mappings({1: {1, 2}, 2: {2, 3}}, {})
        # users 1,2,3 each weigh 1 (no competitors); overlap on 2 not doubled
        assert cinf_group(t, [1, 2]) == pytest.approx(3.0)


class TestMonotoneSubmodular:
    """cinf(.) must be monotone and submodular (Theorem 2 preconditions)."""

    def random_table(self, seed):
        rng = np.random.default_rng(seed)
        omega = {
            cid: set(rng.choice(30, size=rng.integers(0, 10), replace=False).tolist())
            for cid in range(8)
        }
        f_o = {
            uid: set(rng.choice(5, size=rng.integers(0, 4), replace=False).tolist())
            for uid in range(30)
        }
        return InfluenceTable.from_mappings(omega, f_o)

    @pytest.mark.parametrize("seed", range(5))
    def test_monotone(self, seed):
        t = self.random_table(seed)
        rng = np.random.default_rng(seed + 100)
        group = []
        prev = 0.0
        for cid in rng.permutation(8).tolist():
            group.append(cid)
            val = cinf_group(t, group)
            assert val >= prev - 1e-12
            prev = val

    @pytest.mark.parametrize("seed", range(5))
    def test_submodular(self, seed):
        t = self.random_table(seed)
        # For H subset G and c not in G: gain(H, c) >= gain(G, c)
        h = [0, 1]
        g = [0, 1, 2, 3]
        for c in [4, 5, 6, 7]:
            gain_h = cinf_group(t, h + [c]) - cinf_group(t, h)
            gain_g = cinf_group(t, g + [c]) - cinf_group(t, g)
            assert gain_h >= gain_g - 1e-12


class TestCompetitionModels:
    def test_evenly_split_model_matches_functions(self, paper_example_table):
        m = EvenlySplitModel()
        t = paper_example_table
        assert m.group_value(t, [1, 3]) == pytest.approx(cinf_group(t, [1, 3]))
        assert m.candidate_value(t, 3) == pytest.approx(cinf_candidate(t, 3))

    def test_distance_weighted_shares_sum_sensibly(self):
        pf = paper_default_pf()
        users = {
            1: MovingUser(1, np.array([[0.0, 0.0], [0.5, 0.5]])),
        }
        facilities = {10: existing(10, 0.2, 0.2), 11: existing(11, 50.0, 50.0)}
        t = InfluenceTable.from_mappings({0: {1}}, {1: {10}})
        m = DistanceWeightedModel(users, facilities, pf, candidate_utility=0.5)
        share = m.user_share(t, 1)
        assert 0.0 < share < 1.0
        # A user with no competitor gives the candidate a full share.
        t2 = InfluenceTable.from_mappings({0: {1}}, {1: set()})
        m2 = DistanceWeightedModel(users, facilities, pf)
        assert m2.user_share(t2, 1) == pytest.approx(1.0)

    def test_distance_weighted_more_competitors_less_share(self):
        pf = paper_default_pf()
        users = {1: MovingUser(1, np.array([[0.0, 0.0]]))}
        facilities = {10: existing(10, 0.1, 0.1), 11: existing(11, 0.2, 0.0)}
        m = DistanceWeightedModel(users, facilities, pf)
        one = m.user_share(InfluenceTable.from_mappings({0: {1}}, {1: {10}}), 1)
        m2 = DistanceWeightedModel(users, facilities, pf)
        two = m2.user_share(InfluenceTable.from_mappings({0: {1}}, {1: {10, 11}}), 1)
        assert two < one
