"""Unit tests for :mod:`repro.geo.circle` and :mod:`repro.geo.square`."""

import math

import numpy as np
import pytest

from repro.exceptions import GeometryError
from repro.geo import SQRT2, Circle, Point, Rect, RoundedSquare, Square


class TestCircle:
    def test_negative_radius_rejected(self):
        with pytest.raises(GeometryError):
            Circle(Point(0, 0), -1.0)

    def test_zero_radius_contains_only_center(self):
        c = Circle(Point(1, 1), 0.0)
        assert c.contains_point(Point(1, 1))
        assert not c.contains_point(Point(1, 1.001))

    def test_contains_point_boundary(self):
        c = Circle(Point(0, 0), 5.0)
        assert c.contains_point(Point(3, 4))
        assert not c.contains_point(Point(3.001, 4))

    def test_contains_rect_via_farthest_corner(self):
        c = Circle(Point(0, 0), math.sqrt(2) + 1e-9)
        assert c.contains_rect(Rect(-1, -1, 1, 1))
        assert not c.contains_rect(Rect(-1, -1, 1.1, 1))

    def test_intersects_rect(self):
        c = Circle(Point(0, 0), 1.0)
        assert c.intersects_rect(Rect(0.5, 0.5, 2, 2))
        assert c.intersects_rect(Rect(1, 0, 2, 0.1))  # touching
        assert not c.intersects_rect(Rect(2, 2, 3, 3))

    def test_bounding_rect(self):
        assert Circle(Point(1, 2), 3).bounding_rect() == Rect(-2, -1, 4, 5)

    def test_contains_mask_and_count(self):
        c = Circle(Point(0, 0), 1.0)
        xy = np.array([[0, 0], [1, 0], [0.8, 0.8], [0.7, 0.7]])
        assert c.contains_mask(xy).tolist() == [True, True, False, True]
        assert c.count_inside(xy) == 3

    def test_area(self):
        assert Circle(Point(0, 0), 2).area == pytest.approx(4 * math.pi)


class TestSquare:
    def test_side_must_be_positive(self):
        with pytest.raises(GeometryError):
            Square(Point(0, 0), 0.0)

    def test_diagonal(self):
        assert Square(Point(0, 0), 2.0).diagonal == pytest.approx(2 * SQRT2)

    def test_rect_roundtrip(self):
        sq = Square(Point(1, 1), 2.0)
        r = sq.rect()
        assert r == Rect(0, 0, 2, 2)
        assert Square.from_rect(r) == sq

    def test_from_diagonal(self):
        sq = Square.from_diagonal(Point(0, 0), 2.0)
        assert sq.side == pytest.approx(2.0 / SQRT2)
        assert sq.diagonal == pytest.approx(2.0)
        with pytest.raises(GeometryError):
            Square.from_diagonal(Point(0, 0), 0)

    def test_from_rect_rejects_non_square(self):
        with pytest.raises(GeometryError):
            Square.from_rect(Rect(0, 0, 2, 1))


class TestRoundedSquare:
    def test_negative_radius_rejected(self):
        with pytest.raises(GeometryError):
            RoundedSquare(Square(Point(0, 0), 1.0), -0.5)

    def test_mbr_expands_by_radius(self):
        rs = RoundedSquare(Square(Point(0, 0), 2.0), 1.0)
        assert rs.mbr() == Rect(-2, -2, 2, 2)

    def test_contains_point_edge_vs_corner(self):
        # square [-1,1]^2 with corner radius 1
        rs = RoundedSquare(Square(Point(0, 0), 2.0), 1.0)
        # on an edge extension the full radius reaches out
        assert rs.contains_point(Point(2.0, 0.0))
        # but the MBR corner (2, 2) is NOT inside the rounded shape
        assert not rs.contains_point(Point(2.0, 2.0))
        # the rounded corner reaches sqrt(1/2) beyond the square corner
        assert rs.contains_point(Point(1 + 0.7, 1 + 0.7))
        assert not rs.contains_point(Point(1 + 0.8, 1 + 0.8))

    def test_zero_radius_degenerates_to_square(self):
        rs = RoundedSquare(Square(Point(0, 0), 2.0), 0.0)
        assert rs.mbr() == Rect(-1, -1, 1, 1)
        assert rs.contains_point(Point(1, 1))
        assert not rs.contains_point(Point(1.01, 1))

    def test_contains_mask_matches_scalar(self):
        rs = RoundedSquare(Square(Point(0.5, -0.5), 3.0), 0.8)
        rng = np.random.default_rng(42)
        xy = rng.uniform(-4, 4, size=(200, 2))
        mask = rs.contains_mask(xy)
        for i in range(xy.shape[0]):
            assert mask[i] == rs.contains_point(Point(xy[i, 0], xy[i, 1]))
