"""Tests for network-distance influence and the network solver."""

import math

import numpy as np
import pytest

from repro.competition import cinf_group
from repro.entities import MovingUser, SpatialDataset, candidate, existing
from repro.exceptions import DataError
from repro.influence import paper_default_pf
from repro.roadnet import (
    NetworkInfluenceModel,
    RoadNetwork,
    grid_network,
    solve_on_network,
)

PF = paper_default_pf()


def brute_force_influenced(network, dataset, facility, tau, cutoff):
    """Reference implementation: per-pair snapping + pairwise Dijkstra."""
    v_node, v_offset = network.nearest_node(facility.x, facility.y)
    out = set()
    for user in dataset.users:
        q = 1.0
        for row in user.positions:
            p_node, p_offset = network.nearest_node(float(row[0]), float(row[1]))
            base = network.shortest_path_length(v_node, p_node)
            d = v_offset + base + p_offset
            if math.isinf(d) or d >= cutoff:
                continue
            q *= 1.0 - float(PF(d))
        if q <= 1.0 - tau:
            out.add(user.uid)
    return out


def make_dataset(seed=0, n_users=15, side=10.0):
    rng = np.random.default_rng(seed)
    users = [
        MovingUser(
            uid,
            np.clip(rng.normal(rng.uniform(1, side - 1, 2), 0.8, (6, 2)), 0, side),
        )
        for uid in range(n_users)
    ]
    cands = [candidate(i, *rng.uniform(1, side - 1, 2)) for i in range(6)]
    facs = [existing(i, *rng.uniform(1, side - 1, 2)) for i in range(4)]
    return SpatialDataset.build(users, facs, cands, name="net-toy")


class TestNetworkInfluenceModel:
    def test_empty_network_rejected(self):
        ds = make_dataset()
        with pytest.raises(DataError):
            NetworkInfluenceModel(RoadNetwork(), ds)

    @pytest.mark.parametrize("tau", [0.3, 0.6])
    def test_matches_brute_force(self, tau):
        ds = make_dataset(seed=1)
        net = grid_network(side_km=10, spacing_km=1.0, seed=1)
        model = NetworkInfluenceModel(net, ds, tau=tau)
        for v in ds.abstract_facilities:
            expected = brute_force_influenced(net, ds, v, tau, model.cutoff)
            assert model.influenced_users(v) == expected

    def test_dijkstra_run_accounting(self):
        ds = make_dataset(seed=2)
        net = grid_network(side_km=10, spacing_km=1.0)
        model = NetworkInfluenceModel(net, ds, tau=0.5)
        model.build_table()
        assert model.dijkstra_runs == len(ds.abstract_facilities)

    def test_network_distance_never_increases_influence(self):
        """Network metric >= Euclidean metric, so network coverage is a
        subset of Euclidean coverage for the same (v, tau)."""
        from repro.influence import InfluenceEvaluator

        ds = make_dataset(seed=3)
        net = grid_network(side_km=10, spacing_km=0.5, seed=0)
        model = NetworkInfluenceModel(net, ds, tau=0.4)
        ev = InfluenceEvaluator(PF, 0.4, early_stopping=False)
        for v in ds.candidates:
            net_cov = model.influenced_users(v)
            euclid_cov = {
                u.uid for u in ds.users if ev.influences(v.x, v.y, u.positions)
            }
            # Snapping detours can only lengthen distances (up to the snap
            # offsets, which are tiny on a 0.5-km grid).
            assert len(net_cov) <= len(euclid_cov) + 1


class TestSolveOnNetwork:
    def test_end_to_end(self):
        ds = make_dataset(seed=4)
        net = grid_network(side_km=10, spacing_km=1.0)
        result = solve_on_network(ds, net, k=3, tau=0.4)
        assert len(result.selected) == 3
        assert result.objective == pytest.approx(
            cinf_group(result.table, list(result.selected))
        )
        assert all(a >= b - 1e-12 for a, b in zip(result.gains, result.gains[1:]))

    def test_sparser_network_changes_costs(self):
        """A coarse network lengthens travel, shrinking coverage and the
        objective relative to a dense network."""
        ds = make_dataset(seed=5, n_users=25)
        dense = grid_network(side_km=10, spacing_km=0.5)
        sparse = grid_network(side_km=10, spacing_km=4.0)
        dense_result = solve_on_network(ds, dense, k=3, tau=0.4)
        sparse_result = solve_on_network(ds, sparse, k=3, tau=0.4)
        assert sparse_result.objective <= dense_result.objective + 1e-9

    def test_custom_cutoff(self):
        ds = make_dataset(seed=6)
        net = grid_network(side_km=10, spacing_km=1.0)
        tight = solve_on_network(ds, net, k=2, tau=0.4, cutoff=1.0)
        loose = solve_on_network(ds, net, k=2, tau=0.4, cutoff=30.0)
        # A tighter cutoff can only shrink coverage.
        covered_tight = set().union(*tight.table.omega_c.values())
        covered_loose = set().union(*loose.table.omega_c.values())
        assert covered_tight <= covered_loose
