"""The `campaign` CLI: run/status/report/clean/smoke end to end.

Everything runs through `main(argv)` in-process against the tiny
shipped smoke spec (one grid, four points), except the `smoke` action
which is exercised the way CI invokes it — as a subprocess.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.campaign import ResultStore, smoke_spec
from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parent.parent


def _store(tmp_path):
    return ResultStore(Path(tmp_path) / "campaigns" / "smoke")


def _run(tmp_path, *extra):
    return main([
        "campaign", "run", "--spec", "smoke",
        "--store", str(tmp_path / "campaigns"), *extra,
    ])


class TestRun:
    def test_run_then_rerun_is_pure_cache(self, tmp_path, capsys):
        assert _run(tmp_path) == 0
        out = capsys.readouterr().out
        assert "4 executed, 0 cached" in out
        assert _run(tmp_path) == 0
        out = capsys.readouterr().out
        assert "0 executed, 4 cached" in out
        assert len(_store(tmp_path).keys()) == 4

    def test_no_resume_re_executes(self, tmp_path, capsys):
        assert _run(tmp_path) == 0
        capsys.readouterr()
        assert _run(tmp_path, "--no-resume") == 0
        assert "4 executed, 0 cached" in capsys.readouterr().out

    def test_spec_json_path_accepted(self, tmp_path, capsys):
        spec_path = tmp_path / "my.json"
        smoke_spec().save_json(spec_path)
        assert main([
            "campaign", "run", "--spec", str(spec_path),
            "--store", str(tmp_path / "campaigns"),
        ]) == 0
        assert "4 executed" in capsys.readouterr().out

    def test_unknown_spec_name_is_a_clean_error(self, tmp_path, capsys):
        assert main([
            "campaign", "run", "--spec", "nope",
            "--store", str(tmp_path / "campaigns"),
        ]) == 2
        assert "unknown campaign" in capsys.readouterr().err


class TestStatus:
    def test_incomplete_exits_nonzero_and_counts(self, tmp_path, capsys):
        args = ["campaign", "status", "--spec", "smoke",
                "--store", str(tmp_path / "campaigns")]
        assert main(args) == 1
        assert "0/4 points complete" in capsys.readouterr().out
        _run(tmp_path)
        capsys.readouterr()
        assert main(args) == 0
        assert "4/4 points complete" in capsys.readouterr().out

    def test_list_missing_prints_keys(self, tmp_path, capsys):
        assert main([
            "campaign", "status", "--spec", "smoke",
            "--store", str(tmp_path / "campaigns"), "--list-missing",
        ]) == 1
        out = capsys.readouterr().out
        assert out.count("missing  smoke-2x2") == 4


class TestReportAndClean:
    def test_report_renders_completed_grid(self, tmp_path, capsys):
        _run(tmp_path)
        capsys.readouterr()
        assert main([
            "campaign", "report", "--spec", "smoke",
            "--store", str(tmp_path / "campaigns"),
            "--results-dir", str(tmp_path / "results"), "--no-svg",
        ]) == 0
        out = capsys.readouterr().out
        assert "smoke-2x2" in out and "iqt_s" in out
        assert (tmp_path / "results").is_dir()

    def test_report_on_empty_store_fails(self, tmp_path, capsys):
        assert main([
            "campaign", "report", "--spec", "smoke",
            "--store", str(tmp_path / "campaigns"),
            "--results-dir", str(tmp_path / "results"),
        ]) == 1
        assert "no completed points" in capsys.readouterr().err

    def test_clean_drops_the_store(self, tmp_path, capsys):
        _run(tmp_path)
        capsys.readouterr()
        assert main([
            "campaign", "clean", "--spec", "smoke",
            "--store", str(tmp_path / "campaigns"),
        ]) == 0
        assert "dropped 4" in capsys.readouterr().out
        assert _store(tmp_path).keys() == []


def test_smoke_subcommand_asserts_cache_hits_like_ci(tmp_path):
    """CI parity: `python -m repro campaign smoke` as a subprocess."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "campaign", "smoke"],
        capture_output=True, text=True, timeout=580,
        cwd=tmp_path, env=env,
    )
    assert proc.returncode == 0, proc.stderr
    assert "campaign smoke ok: second pass was 100% cache hits" \
        in proc.stdout
