"""Unit tests of the capture subsystem's models and plumbing."""

import numpy as np
import pytest

from repro import paper_default_pf
from repro.capture import (
    DEFAULT_CAPTURE_KEY,
    REGISTERED_MODELS,
    CaptureSpec,
    FixedWorldsCaptureModel,
    MNLCaptureModel,
    SiteUtilities,
    densify_coverage,
    evenly_split_capture,
    pair_uniforms,
    rival_candidate_id,
    rival_competitor_id,
)
from repro.competition import EvenlySplitModel, InfluenceTable, cinf_group
from repro.exceptions import CaptureError, SolverError
from repro.influence import InfluenceEvaluator
from repro.solvers.base import resolve_all_pairs
from tests.conftest import build_instance


def resolved_table(dataset, tau=0.7, pf=None):
    ev = InfluenceEvaluator(pf or paper_default_pf(), tau)
    omega_c, f_o = resolve_all_pairs(dataset, ev)
    return InfluenceTable.from_mappings(omega_c, f_o), sorted(omega_c)


@pytest.fixture(scope="module")
def instance():
    dataset = build_instance(seed=11, n_users=40, n_candidates=14, n_facilities=8)
    pf = paper_default_pf()
    table, cids = resolved_table(dataset, pf=pf)
    return dataset, pf, table, cids


class TestSiteUtilities:
    def test_utilities_in_unit_interval(self, instance):
        dataset, pf, table, cids = instance
        util = SiteUtilities(dataset, pf)
        for cid in cids[:5]:
            for user in dataset.users[:5]:
                u = util.candidate_utility(cid, user.uid)
                assert 0.0 <= u <= 1.0

    def test_unknown_ids_raise(self, instance):
        dataset, pf, _, _ = instance
        util = SiteUtilities(dataset, pf)
        with pytest.raises(CaptureError):
            util.candidate_utility(10**9, dataset.users[0].uid)
        with pytest.raises(CaptureError):
            util.competitor_utility(10**9, dataset.users[0].uid)
        with pytest.raises(CaptureError):
            util.candidate_utility(0, 10**9)

    def test_rival_id_roundtrip(self):
        for cid in (0, 1, 7, 10**6):
            rid = rival_competitor_id(cid)
            assert rid < 0
            assert rival_candidate_id(rid) == cid
        with pytest.raises(CaptureError):
            rival_candidate_id(3)

    def test_rival_utility_resolves_to_candidate(self, instance):
        dataset, pf, _, cids = instance
        util = SiteUtilities(dataset, pf)
        uid = dataset.users[0].uid
        cid = cids[0]
        assert util.competitor_utility(
            rival_competitor_id(cid), uid
        ) == util.candidate_utility(cid, uid)


class TestPairUniforms:
    def test_deterministic_and_in_range(self):
        cids = np.array([0, 1, 2, 99], dtype=np.int64)
        uids = np.array([5, 5, 7, 7], dtype=np.int64)
        a = pair_uniforms(13, cids, uids, 32)
        b = pair_uniforms(13, cids, uids, 32)
        assert a.shape == (4, 32)
        np.testing.assert_array_equal(a, b)
        assert (a >= 0.0).all() and (a < 1.0).all()

    def test_independent_of_other_pairs(self):
        # The defining property: a pair's coins do not depend on which
        # other pairs are evaluated alongside it.
        full = pair_uniforms(
            3, np.array([4, 9, 2]), np.array([1, 1, 8]), 16
        )
        solo = pair_uniforms(3, np.array([9]), np.array([1]), 16)
        np.testing.assert_array_equal(full[1], solo[0])

    def test_seed_changes_coins(self):
        cids = np.array([0], dtype=np.int64)
        uids = np.array([0], dtype=np.int64)
        assert not np.array_equal(
            pair_uniforms(0, cids, uids, 64), pair_uniforms(1, cids, uids, 64)
        )


class TestDensify:
    def test_csr_matches_table(self, instance):
        _, _, table, cids = instance
        out_cids, user_ids, indptr, col, entry_cid = densify_coverage(table, cids)
        assert out_cids == tuple(cids)
        for j, cid in enumerate(out_cids):
            seg = col[indptr[j] : indptr[j + 1]]
            assert set(user_ids[seg].tolist()) == table.omega_c.get(cid, set())
            assert (entry_cid[indptr[j] : indptr[j + 1]] == cid).all()


class TestMNL:
    def test_beta_validation(self, instance):
        dataset, pf, _, _ = instance
        util = SiteUtilities(dataset, pf)
        for bad in (0.0, -1.0, float("nan"), float("inf")):
            with pytest.raises(CaptureError):
                MNLCaptureModel(util, beta=bad)

    def test_capture_weights_bounded_and_monotone(self, instance):
        dataset, pf, table, cids = instance
        util = SiteUtilities(dataset, pf)
        model = MNLCaptureModel(util, beta=2.0)
        uids = sorted({u for users in table.omega_c.values() for u in users})
        small = model.capture_weights(table, uids, set(cids[:2]))
        large = model.capture_weights(table, uids, set(cids))
        assert (small >= 0.0).all() and (large <= 1.0).all()
        assert (large >= small - 1e-15).all()  # monotone in the offer set

    def test_state_gain_matches_scalar_oracle(self, instance):
        dataset, pf, table, cids = instance
        util = SiteUtilities(dataset, pf)
        model = MNLCaptureModel(util, beta=1.5)
        state = model.make_state(table, cids)
        chosen = []
        for j in (0, 3, 5):
            for jj in range(len(state.candidate_ids)):
                if jj in (0, 3, 5)[: len(chosen)]:
                    continue  # gain() is defined only for unselected js
                got = state.gain(jj)
                want = model.gain(table, chosen, state.candidate_ids[jj])
                assert got == pytest.approx(want, abs=1e-12)
            state.add(j)
            chosen.append(state.candidate_ids[j])

    def test_set_aware_flags(self, instance):
        dataset, pf, _, _ = instance
        model = MNLCaptureModel(SiteUtilities(dataset, pf))
        assert model.submodular and not model.set_independent
        with pytest.raises(CaptureError):
            model.weight_model


class TestFixedWorlds:
    def test_world_count_validation(self, instance):
        dataset, pf, _, _ = instance
        util = SiteUtilities(dataset, pf)
        for bad in (0, 65, -1):
            with pytest.raises(CaptureError):
                FixedWorldsCaptureModel(util, n_worlds=bad)

    def test_deterministic_per_seed(self, instance):
        dataset, pf, table, cids = instance
        util = SiteUtilities(dataset, pf)
        uids = sorted({u for users in table.omega_c.values() for u in users})
        a = FixedWorldsCaptureModel(util, n_worlds=16, seed=4)
        b = FixedWorldsCaptureModel(util, n_worlds=16, seed=4)
        c = FixedWorldsCaptureModel(util, n_worlds=16, seed=5)
        sel = set(cids[:4])
        np.testing.assert_array_equal(
            a.capture_weights(table, uids, sel),
            b.capture_weights(table, uids, sel),
        )
        assert a.cache_key() != c.cache_key()

    def test_state_gain_matches_scalar_oracle(self, instance):
        dataset, pf, table, cids = instance
        util = SiteUtilities(dataset, pf)
        model = FixedWorldsCaptureModel(util, n_worlds=24, seed=2)
        state = model.make_state(table, cids)
        chosen = []
        for j in (1, 4):
            for jj in range(len(state.candidate_ids)):
                if jj in (1, 4)[: len(chosen)]:
                    continue  # gain() is defined only for unselected js
                got = state.gain(jj)
                want = model.gain(table, chosen, state.candidate_ids[jj])
                assert got == pytest.approx(want, abs=1e-12)
            state.add(j)
            chosen.append(state.candidate_ids[j])


class TestEvenlySplitAdapter:
    def test_objective_bit_equal_to_cinf_group(self, instance):
        _, _, table, cids = instance
        model = evenly_split_capture()
        group = cids[:5]
        assert model.objective(table, group) == cinf_group(table, list(group))

    def test_set_independent_contract(self, instance):
        _, _, table, cids = instance
        model = evenly_split_capture()
        assert model.set_independent and model.submodular
        assert isinstance(model.weight_model, EvenlySplitModel)
        assert model.cache_key() == DEFAULT_CAPTURE_KEY
        with pytest.raises(CaptureError):
            model.make_state(table, cids)


class TestRegistry:
    def test_unknown_model_lists_registry(self):
        with pytest.raises(CaptureError) as exc:
            CaptureSpec(model="nope")
        msg = str(exc.value)
        for name in REGISTERED_MODELS:
            assert name in msg

    def test_cache_keys_ignore_foreign_params(self):
        a = CaptureSpec(model="evenly-split", mnl_beta=1.0)
        b = CaptureSpec(model="evenly-split", mnl_beta=99.0)
        assert a.cache_key() == b.cache_key() == DEFAULT_CAPTURE_KEY
        assert a.is_default and b.is_default
        m1 = CaptureSpec(model="mnl", mnl_beta=2.0, worlds=8)
        m2 = CaptureSpec(model="mnl", mnl_beta=2.0, worlds=64)
        assert m1.cache_key() == m2.cache_key()
        assert m1.cache_key() != CaptureSpec(model="mnl", mnl_beta=3.0).cache_key()

    def test_build_every_registered_model(self, instance):
        dataset, pf, table, cids = instance
        for name in REGISTERED_MODELS:
            model = CaptureSpec(model=name).build(dataset, pf)
            assert model.cache_key()[0] in (name, "evenly-split")
            obj = model.objective(table, cids[:3])
            assert obj >= 0.0

    def test_huff_utility_validation(self, instance):
        dataset, pf, _, _ = instance
        with pytest.raises(CaptureError):
            CaptureSpec(model="huff", huff_utility=0.0).build(dataset, pf)


class TestRunSelectionDispatch:
    def test_model_and_capture_are_exclusive(self, instance):
        _, pf, table, cids = instance
        from repro.solvers import run_selection

        with pytest.raises(SolverError):
            run_selection(
                table,
                cids,
                2,
                model=EvenlySplitModel(),
                capture=evenly_split_capture(),
            )
