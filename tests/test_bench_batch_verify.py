"""Smoke test: the batch-verification microbenchmark must run and record.

Invokes ``benchmarks/bench_micro_core_ops.py --smoke`` the way a user
would (as a subprocess) and asserts the ``BENCH_batch_verify.json``
trajectory point lands at the repo root with the bit-identity checks
green and the speedup above the acceptance floor.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_smoke_records_trajectory_point():
    out_path = REPO_ROOT / "BENCH_batch_verify.json"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.run(
        [
            sys.executable,
            str(REPO_ROOT / "benchmarks" / "bench_micro_core_ops.py"),
            "--smoke",
        ],
        capture_output=True,
        text=True,
        timeout=300,
        cwd=REPO_ROOT,
        env=env,
    )
    assert proc.returncode == 0, proc.stderr
    assert out_path.exists()
    payload = json.loads(out_path.read_text())
    assert payload["benchmark"] == "batch_verify"
    assert payload["n_users"] >= 1000
    assert payload["decisions_equal"] is True
    assert payload["stats_equal"] is True
    assert payload["speedup"] >= 3.0
