"""Tests for Independent Cascade propagation and the fixed-worlds sampler."""

import numpy as np
import pytest

from repro.exceptions import DataError
from repro.social import CascadeSampler, SocialGraph, simulate_cascade, small_world_graph


@pytest.fixture
def chain_graph():
    g = SocialGraph()
    for i in range(9):
        g.add_edge(i, i + 1)
    return g


@pytest.fixture
def ws_graph():
    return small_world_graph(list(range(60)), k=4, rewire_p=0.2, seed=5)


class TestCascadeSampler:
    def test_validation(self, chain_graph):
        with pytest.raises(DataError):
            CascadeSampler(chain_graph, probability=1.5)
        with pytest.raises(DataError):
            CascadeSampler(chain_graph, n_worlds=0)

    def test_empty_seed_set(self, chain_graph):
        sampler = CascadeSampler(chain_graph)
        assert sampler.spread([]) == 0.0

    def test_spread_includes_seeds(self, chain_graph):
        sampler = CascadeSampler(chain_graph, probability=0.0)
        assert sampler.spread([3, 7]) == pytest.approx(2.0)

    def test_probability_one_reaches_component(self, chain_graph):
        sampler = CascadeSampler(chain_graph, probability=1.0, n_worlds=4)
        assert sampler.spread([0]) == pytest.approx(10.0)

    def test_deterministic_given_seed(self, ws_graph):
        a = CascadeSampler(ws_graph, probability=0.2, n_worlds=32, seed=9)
        b = CascadeSampler(ws_graph, probability=0.2, n_worlds=32, seed=9)
        assert a.spread([1, 5, 9]) == b.spread([1, 5, 9])

    def test_monotone_in_seeds(self, ws_graph):
        sampler = CascadeSampler(ws_graph, probability=0.15, n_worlds=32, seed=1)
        rng = np.random.default_rng(0)
        for _ in range(20):
            seeds = set(rng.choice(60, size=5, replace=False).tolist())
            extra = int(rng.integers(60))
            assert sampler.spread(seeds | {extra}) >= sampler.spread(seeds) - 1e-12

    def test_submodular_in_seeds(self, ws_graph):
        """σ(S ∪ {x}) − σ(S) shrinks as S grows (fixed worlds = exact)."""
        sampler = CascadeSampler(ws_graph, probability=0.15, n_worlds=32, seed=2)
        small = frozenset({1, 2})
        large = frozenset({1, 2, 10, 20, 30})
        for x in (5, 15, 25, 45):
            gain_small = sampler.marginal_spread(small, [x])
            gain_large = sampler.marginal_spread(large, [x])
            assert gain_small >= gain_large - 1e-12

    def test_spread_bounded_by_population(self, ws_graph):
        sampler = CascadeSampler(ws_graph, probability=0.9, n_worlds=8, seed=0)
        assert sampler.spread(range(10)) <= len(ws_graph)

    def test_cache_hit(self, chain_graph):
        sampler = CascadeSampler(chain_graph, probability=0.5, n_worlds=16)
        first = sampler.spread([0, 5])
        second = sampler.spread([5, 0])  # same frozenset
        assert first == second

    def test_graph_without_edges(self):
        g = SocialGraph([1, 2, 3])
        sampler = CascadeSampler(g, probability=0.5)
        assert sampler.spread([1, 2]) == pytest.approx(2.0)


class TestSimulateCascade:
    def test_zero_probability_only_seeds(self, chain_graph):
        out = simulate_cascade(chain_graph, [4], probability=0.0)
        assert out == {4}

    def test_probability_one_full_component(self, chain_graph):
        out = simulate_cascade(chain_graph, [0], probability=1.0)
        assert out == set(range(10))

    def test_activated_superset_of_seeds(self, ws_graph):
        rng = np.random.default_rng(3)
        out = simulate_cascade(ws_graph, [1, 2, 3], probability=0.3, rng=rng)
        assert {1, 2, 3} <= out
