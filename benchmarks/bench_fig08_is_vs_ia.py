"""Fig. 8 — the new IS/NIR rules against the classical IA/NIB rules.

Expected shape (paper §VII-B): IS confirms more pairs than IA; NIR prunes
more than NIB on the uniform C-like data, while NIB closes the gap (or
slightly wins) on the skewed N-like data.
"""

from repro.bench import record_table
from repro.bench.experiments import fig08_rule_comparison


def test_fig08_rule_comparison(benchmark):
    rows = benchmark.pedantic(
        lambda: fig08_rule_comparison("C") + fig08_rule_comparison("N"),
        rounds=1,
        iterations=1,
    )
    record_table("Fig 8 - IS vs IA and NIR vs NIB pair fractions", rows)
    c_rows = [r for r in rows if r["dataset"] == "C"]
    # On uniform data the user-pruning rules dominate their classical
    # facility-pruning counterparts.
    assert sum(r["NIR_pruned"] for r in c_rows) > sum(r["NIB_pruned"] for r in c_rows) * 0.9
