"""Extension bench — time-aware (site, window) selection.

Expected shape: richer shift menus never reduce captured demand; the
ALL_DAY-only menu reproduces the base MC²LS greedy exactly; shifted
windows matched to the demand rhythm recover most of the always-open
demand at a fraction of the opening hours.
"""

from repro.bench import record_table
from repro.bench.datasets import dataset
from repro.temporal import ALL_DAY, TimeAwareMC2LS, TimeWindow, attach_hours

SHIFTS = [TimeWindow(6, 11), TimeWindow(11, 15), TimeWindow(16, 22)]


def menu_sweep():
    ds = dataset("N", n_candidates=30, n_facilities=60).subsample_users(250, seed=2)
    timed = attach_hours(ds.users, seed=2)
    menus = [
        ("all-day only", [ALL_DAY]),
        ("single shift", [TimeWindow(11, 15)]),
        ("three shifts", SHIFTS),
        ("shifts + all-day", SHIFTS + [ALL_DAY]),
    ]
    rows = []
    for name, menu in menus:
        result = TimeAwareMC2LS(
            timed, ds.facilities, ds.candidates, windows=menu, k=5, tau=0.5
        ).solve()
        open_hours = sum(p.window.duration for p in result.placements)
        rows.append(
            {
                "menu": name,
                "captured_demand": result.objective,
                "total_open_hours": open_hours,
                "demand_per_open_hour": result.objective / max(open_hours, 1),
            }
        )
    return rows


def test_temporal_menu_sweep(benchmark):
    rows = benchmark.pedantic(menu_sweep, rounds=1, iterations=1)
    record_table("Extension - time-aware shift menus (N-like)", rows)
    by_menu = {r["menu"]: r for r in rows}
    # A superset menu can never capture less demand.
    assert (
        by_menu["shifts + all-day"]["captured_demand"]
        >= by_menu["three shifts"]["captured_demand"] - 1e-9
    )
    assert (
        by_menu["shifts + all-day"]["captured_demand"]
        >= by_menu["all-day only"]["captured_demand"] - 1e-9
    )
    # Shift plans buy far better demand-per-open-hour than always-open.
    assert (
        by_menu["three shifts"]["demand_per_open_hour"]
        > by_menu["all-day only"]["demand_per_open_hour"]
    )
