"""Selection cost across the pluggable capture models.

Times greedy ``k``-selection on one synthetic population under every
registered capture model (:data:`repro.capture.REGISTERED_MODELS`):

* **evenly-split** / **huff** — set-independent; selection routes
  through the unchanged CSR ``reduceat``-screened kernel via
  ``run_selection(capture=...)``;
* **mnl** / **fixed-worlds** — set-aware; selection runs the CELF loop
  over the model's vectorized marginal-gain state
  (:func:`repro.capture.capture_select`).

Before any timing is reported, evenly-split through the capture contract
is checked **bit-identical** (selection, gains, objective) to the legacy
no-capture path — the degenerate-case guarantee the differential suite
pins at property scale, re-asserted here at benchmark scale.  For the
CELF models the payload records the lazy-evaluation count next to the
full-rescan count ``Σ_{i<k} (n − i)`` the non-submodular fallback would
pay, so the saving is visible in the trajectory point.

Timings follow the repeats/median/spread discipline of
:mod:`repro.bench.timing`.  Writes ``BENCH_capture_models.json`` at the
repo root; ``--smoke`` (wired into the test suite and CI) runs a reduced
scale to a temporary path so the committed point cannot rot.
"""

import argparse
import json
import os
from pathlib import Path

from repro.bench.timing import repeat_timed
from repro.capture import CaptureSpec, REGISTERED_MODELS, capture_select
from repro.competition import InfluenceTable
from repro.data.synthetic import SyntheticSpec, generate_population
from repro.influence import InfluenceEvaluator, paper_default_pf
from repro.solvers import run_selection
from repro.solvers.base import resolve_all_pairs

REPO_ROOT = Path(__file__).resolve().parents[1]

DEFAULT_TAU = 0.7


def _population_dataset(n_users, n_candidates, n_facilities, seed=0):
    spec = SyntheticSpec(
        n_users=n_users,
        mean_positions=8.0,
        side=200.0,
        mbr_area_ratio=0.085,
        n_clusters=0,
        cluster_sigma_fraction=0.0,
        n_pois=max(2000, n_candidates + n_facilities),
        venues_per_user=4.0,
        venue_jitter=0.2,
    )
    population = generate_population(spec, seed=seed)
    return population.dataset(
        n_candidates, n_facilities, seed=seed + 1, name="capture-bench"
    )


def _rescan_evaluations(n_candidates: int, k: int) -> int:
    """Evaluations a full per-round rescan would pay for the same run."""
    return sum(n_candidates - i for i in range(k))


def run_capture_models_benchmark(
    n_users: int = 60_000,
    n_candidates: int = 40,
    n_facilities: int = 24,
    k: int = 8,
    tau: float = DEFAULT_TAU,
    mnl_beta: float = 2.0,
    worlds: int = 32,
    world_seed: int = 0,
    repeats: int = 5,
    out_path: Path = None,
) -> dict:
    """Time selection under every registered capture model."""
    dataset = _population_dataset(n_users, n_candidates, n_facilities)
    pf = paper_default_pf()
    ev = InfluenceEvaluator(pf, tau)
    resolve_timing = repeat_timed(
        lambda: resolve_all_pairs(dataset, ev, batch_verify=True), repeats
    )
    omega, f_o = resolve_timing.result
    table = InfluenceTable.from_mappings(omega, f_o)
    cids = sorted(omega)

    # Degenerate-case guarantee at benchmark scale: evenly-split through
    # the capture contract is bit-identical to the legacy path.
    legacy = run_selection(table, cids, k)
    via_capture = run_selection(
        table, cids, k, capture=CaptureSpec().build(dataset, pf)
    )
    evenly_split_identical = (
        legacy.selected == via_capture.selected
        and legacy.gains == via_capture.gains
        and legacy.objective == via_capture.objective
    )

    specs = {
        "evenly-split": CaptureSpec(),
        "huff": CaptureSpec(model="huff"),
        "mnl": CaptureSpec(model="mnl", mnl_beta=mnl_beta),
        "fixed-worlds": CaptureSpec(
            model="fixed-worlds",
            mnl_beta=mnl_beta,
            worlds=worlds,
            world_seed=world_seed,
        ),
    }
    assert set(specs) == set(REGISTERED_MODELS)

    models_payload = {}
    for name in REGISTERED_MODELS:
        model = specs[name].build(dataset, pf)
        if model.set_independent:
            timing = repeat_timed(
                lambda m=model: run_selection(table, cids, k, capture=m), repeats
            )
            path = "csr-kernel"
        else:
            timing = repeat_timed(
                lambda m=model: capture_select(table, cids, k, m), repeats
            )
            path = "celf"
        outcome = timing.result
        record = {
            "path": path,
            "select": timing.summary(),
            "selected": list(outcome.selected),
            "objective": outcome.objective,
            "evaluations": outcome.evaluations,
        }
        if path == "celf":
            rescan = _rescan_evaluations(len(cids), k)
            record["rescan_evaluations"] = rescan
            record["celf_saving"] = 1.0 - outcome.evaluations / rescan
        models_payload[name] = record

    base = models_payload["evenly-split"]["select"]["median_s"]
    for record in models_payload.values():
        record["slowdown_vs_evenly_split"] = record["select"]["median_s"] / base

    payload = {
        "benchmark": "capture_models",
        "n_users": n_users,
        "n_candidates": n_candidates,
        "n_facilities": n_facilities,
        "n_resolved_candidates": len(cids),
        "k": k,
        "tau": tau,
        "mnl_beta": mnl_beta,
        "worlds": worlds,
        "world_seed": world_seed,
        "cpu_count": os.cpu_count(),
        "evenly_split_bit_identical": evenly_split_identical,
        "resolve": resolve_timing.summary(),
        "models": models_payload,
    }
    if out_path is not None:
        out_path.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Selection cost across the pluggable capture models"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="quick run at reduced scale; used by the test suite and CI",
    )
    parser.add_argument("--users", type=int, default=None)
    parser.add_argument("--candidates", type=int, default=None)
    parser.add_argument("--facilities", type=int, default=None)
    parser.add_argument("--k", type=int, default=None)
    parser.add_argument("--mnl-beta", type=float, default=None)
    parser.add_argument("--worlds", type=int, default=None)
    parser.add_argument("--world-seed", type=int, default=None)
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="output JSON path (default: BENCH_capture_models.json at the repo root)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        scale = dict(
            n_users=3_000, n_candidates=16, n_facilities=12, k=4, repeats=3
        )
    else:
        scale = dict(
            n_users=60_000, n_candidates=40, n_facilities=24, k=8, repeats=5
        )
    if args.users:
        scale["n_users"] = args.users
    if args.candidates:
        scale["n_candidates"] = args.candidates
    if args.facilities:
        scale["n_facilities"] = args.facilities
    if args.k:
        scale["k"] = args.k
    if args.mnl_beta:
        scale["mnl_beta"] = args.mnl_beta
    if args.worlds:
        scale["worlds"] = args.worlds
    if args.world_seed is not None:
        scale["world_seed"] = args.world_seed
    if args.repeats:
        scale["repeats"] = args.repeats

    out = args.out or REPO_ROOT / "BENCH_capture_models.json"
    payload = run_capture_models_benchmark(out_path=out, **scale)
    print(json.dumps(payload, indent=2))
    if not payload["evenly_split_bit_identical"]:
        print("ERROR: evenly-split via the capture contract diverged from legacy")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
