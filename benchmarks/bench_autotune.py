"""Autotuner benchmark: record a workload, tune the knobs, prove the win.

The full pipeline under one timer:

1. **record** the bursty canned workload (its τ working set is wider
   than the default prepared cache, so the all-defaults engine cyclically
   thrashes and re-resolves every burst);
2. **calibrate** the machine-local :class:`~repro.tuning.CostModel`;
3. **tune** — screen the full knob grid analytically, then confirm the
   finalists by measured replay against the all-defaults baseline;
4. **verify** — replay the trace twice under the recommended config and
   check (a) both replays are identical in selections and cache-event
   sequence (the determinism invariant), (b) every replayed selection
   matches the recording (exact configs cannot change results), and
   (c) the tuned measured P50 beats the baseline's.

Stages 1–3 are repeat-timed (median/spread via
:mod:`repro.bench.timing`); the headline ``*_s`` numbers are medians.
Writes the ``BENCH_autotune.json`` trajectory point at the repo root;
``--smoke`` (wired into the test suite and CI) runs a reduced scale to a
temporary path so the committed point cannot rot.
"""

import argparse
import json
import tempfile
from pathlib import Path

from repro.bench.timing import repeat_timed
from repro.tuning import (
    CostModel,
    KnobTuner,
    TraceReplayer,
    record_canned,
)

REPO_ROOT = Path(__file__).resolve().parents[1]


def run_autotune_benchmark(
    n_users: int = 400,
    n_candidates: int = 40,
    n_facilities: int = 80,
    validate_top: int = 2,
    calibrate_repeats: int = 2,
    stage_repeats: int = 3,
    out_path: Path = None,
) -> dict:
    """Record → calibrate → tune → verify, each stage repeat-timed.

    Stage timings follow the repeats/median/spread discipline of
    :mod:`repro.bench.timing`: each stage runs ``stage_repeats`` times,
    the headline ``record_s``/``calibrate_s``/``tune_s`` numbers are
    medians, and the full summaries land under ``stages``.
    """
    with tempfile.TemporaryDirectory() as tmp:
        trace_path = Path(tmp) / "bursty.jsonl"
        record_timing = repeat_timed(
            lambda: record_canned(
                "bursty",
                trace_path,
                n_users=n_users,
                n_candidates=n_candidates,
                n_facilities=n_facilities,
                seed=0,
            ),
            stage_repeats,
        )
        trace = record_timing.result

        calibrate_timing = repeat_timed(
            lambda: CostModel.calibrate(repeats=calibrate_repeats),
            stage_repeats,
        )
        cost_model = calibrate_timing.result

        tune_timing = repeat_timed(
            lambda: KnobTuner(trace, cost_model=cost_model).tune(
                validate_top=validate_top
            ),
            stage_repeats,
        )
        recommendation = tune_timing.result

        replayer = TraceReplayer(trace)
        first = replayer.replay(recommendation.config)
        second = replayer.replay(recommendation.config)

    deterministic = (
        first.selections() == second.selections()
        and first.cache_sequence() == second.cache_sequence()
        and first.outcomes() == second.outcomes()
    )
    exact = (
        recommendation.config.exact
        and first.selection_mismatches(trace) == 0
    )
    baseline_p50 = recommendation.measured["baseline"]["p50_s"]
    tuned_p50 = recommendation.measured["tuned"]["p50_s"]

    payload = {
        "benchmark": "autotune",
        "n_users": n_users,
        "n_candidates": n_candidates,
        "n_facilities": n_facilities,
        "trace_events": len(trace),
        "trace_queries": sum(1 for _ in trace.query_events()),
        "record_s": record_timing.summary()["median_s"],
        "calibrate_s": calibrate_timing.summary()["median_s"],
        "tune_s": tune_timing.summary()["median_s"],
        "stage_repeats": stage_repeats,
        "stages": {
            "record": record_timing.summary(),
            "calibrate": calibrate_timing.summary(),
            "tune": tune_timing.summary(),
        },
        "candidates_scored": recommendation.candidates_scored,
        "cost_model": cost_model.as_dict(),
        "recommendation": recommendation.as_dict(),
        "baseline_p50_s": baseline_p50,
        "tuned_p50_s": tuned_p50,
        "speedup_p50": recommendation.speedup_p50,
        "tuned_beats_baseline": tuned_p50 < baseline_p50,
        "replay_deterministic": deterministic,
        "replay_exact": exact,
    }
    if out_path is not None:
        out_path.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Workload autotuner: record, calibrate, tune, verify"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="quick run at reduced scale; used by the test suite and CI",
    )
    parser.add_argument("--users", type=int, default=None)
    parser.add_argument("--candidates", type=int, default=None)
    parser.add_argument(
        "--stage-repeats", type=int, default=None,
        help="timing repeats per pipeline stage (default: 3 full, 1 smoke)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="output JSON path (default: BENCH_autotune.json at the repo root)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        scale = dict(
            n_users=120, n_candidates=12, n_facilities=24,
            validate_top=1, calibrate_repeats=1, stage_repeats=1,
        )
    else:
        scale = dict(
            n_users=400, n_candidates=40, n_facilities=80,
            validate_top=2, calibrate_repeats=2, stage_repeats=3,
        )
    if args.users:
        scale["n_users"] = args.users
    if args.candidates:
        scale["n_candidates"] = args.candidates
    if args.stage_repeats:
        scale["stage_repeats"] = args.stage_repeats

    out = args.out or REPO_ROOT / "BENCH_autotune.json"
    payload = run_autotune_benchmark(out_path=out, **scale)
    print(json.dumps(payload, indent=2))
    failures = [
        key
        for key in ("replay_deterministic", "replay_exact", "tuned_beats_baseline")
        if not payload[key]
    ]
    if failures:
        print(f"ERROR: benchmark invariants failed: {', '.join(failures)}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
