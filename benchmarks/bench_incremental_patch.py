"""Incremental republish: delta-patched prepared instances vs full resolves.

A streaming session over the serving benchmark population (800 users)
takes bursts of churn at increasing rates; after each burst the new
snapshot is turned into a queryable :class:`~repro.service.PreparedInstance`
two ways:

1. **patch** — ``PreparedInstance.patched`` re-verifies only the delta's
   dirty rows and splices them into the cached CSR matrix, then answers a
   ``k`` sweep with warm-started CELF bounds;
2. **full**  — a fresh ``PreparedInstance`` re-resolves every user, then
   answers the same sweep cold.

Every sweep is checked bit-identical (selection, gains, objective)
between the two paths before any timing is reported — the patch is only
interesting because it is *undetectable* from the query side.  Writes
the ``BENCH_incremental_patch.json`` trajectory point at the repo root;
``--smoke`` (wired into the test suite) runs a reduced scale to a
temporary path so the committed point cannot rot.
"""

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.data import california_like
from repro.entities import MovingUser
from repro.service import DatasetSnapshot, PreparedInstance
from repro.solvers import IQTSolver

REPO_ROOT = Path(__file__).resolve().parents[1]


def _best_of(fn, repeats):
    best, result = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _churn(session, n_events, rng, next_uid):
    """Apply a burst of ~n_events mixed events (60% move / 20% add / 20% remove).

    Returns the next fresh uid.  Adds and removes are balanced so the
    population size stays roughly constant across bursts.
    """
    n_move = max(1, int(round(n_events * 0.6)))
    n_add = max(1, int(round(n_events * 0.2)))
    n_rem = n_add
    uids = sorted(session._users)
    for uid in rng.choice(uids, size=min(n_move, len(uids)), replace=False):
        user = session._users[int(uid)]
        moved = user.positions + rng.normal(0.0, 0.5, user.positions.shape)
        session.update_user(MovingUser(int(uid), moved))
    anchor = session._users[uids[0]].positions
    for _ in range(n_add):
        pos = anchor + rng.normal(0.0, 5.0, anchor.shape)
        session.add_user(MovingUser(next_uid, pos))
        next_uid += 1
    survivors = sorted(session._users)
    for uid in rng.choice(survivors, size=min(n_rem, len(survivors)), replace=False):
        session.remove_user(int(uid))
    return next_uid


def _sweep(prepared, ks):
    return [prepared.select(k) for k in ks]


def run_incremental_patch_benchmark(
    n_users: int = 800,
    n_candidates: int = 60,
    n_facilities: int = 120,
    k_max: int = 8,
    tau: float = 0.7,
    churn_rates=(0.01, 0.02, 0.05, 0.10, 0.25),
    repeats: int = 3,
    out_path: Path = None,
) -> dict:
    """Time delta patches against full resolves as the churn rate varies."""
    from repro.streaming import StreamingMC2LS

    dataset = california_like(
        n_users=n_users,
        n_candidates=n_candidates,
        n_facilities=n_facilities,
        seed=0,
    )
    ks = sorted({1, max(1, k_max // 2), k_max})
    session = StreamingMC2LS.from_dataset(dataset, k=k_max, tau=tau)
    snap = DatasetSnapshot.from_streaming(session)
    prepared = PreparedInstance(snap, IQTSolver(), tau)
    _sweep(prepared, ks)  # densify the CSR matrix, capture round-0 bounds

    rng = np.random.default_rng(42)
    next_uid = max(u.uid for u in dataset.users) + 1
    rows = []
    identical = True
    for rate in churn_rates:
        next_uid = _churn(session, int(round(rate * n_users)), rng, next_uid)
        snap2 = DatasetSnapshot.from_streaming(session)

        # Time construction + sweep as one unit for both paths (what a
        # republish actually costs before the next query is answered).
        patch_s, _ = _best_of(
            lambda: _sweep(PreparedInstance.patched(prepared, snap2), ks), repeats
        )
        full_s, _ = _best_of(
            lambda: _sweep(PreparedInstance(snap2, IQTSolver(), tau), ks), repeats
        )

        patched = PreparedInstance.patched(prepared, snap2)
        fresh = PreparedInstance(snap2, IQTSolver(), tau)
        same = all(
            p.selected == f.selected
            and p.gains == f.gains
            and p.objective == f.objective
            for p, f in zip(_sweep(patched, ks), _sweep(fresh, ks))
        )
        identical = identical and same
        rows.append(
            {
                "churn_rate": rate,
                "churn_events": len(snap2.delta),
                "dirty_users": len(snap2.delta.dirty),
                "patch_s": patch_s,
                "full_s": full_s,
                "speedup": full_s / patch_s if patch_s > 0 else float("inf"),
                "identical": same,
            }
        )
        # Chain: subsequent bursts patch the patched instance, the way the
        # engine migrates across repeated republishes.
        prepared = patched
        snap = snap2

    at_5pct = [r["speedup"] for r in rows if r["churn_rate"] <= 0.05]
    payload = {
        "benchmark": "incremental_patch",
        "n_users": n_users,
        "n_candidates": n_candidates,
        "n_facilities": n_facilities,
        "k_max": k_max,
        "tau": tau,
        "ks": ks,
        "rows": rows,
        "min_speedup_at_5pct": min(at_5pct) if at_5pct else None,
        "results_identical": identical,
    }
    if out_path is not None:
        out_path.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Delta-patched prepared instances vs full resolves under churn"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="quick run at reduced scale; used by the test suite",
    )
    parser.add_argument("--users", type=int, default=None)
    parser.add_argument("--candidates", type=int, default=None)
    parser.add_argument("--k-max", type=int, default=None)
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="output JSON path (default: BENCH_incremental_patch.json at the repo root)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        scale = dict(
            n_users=150,
            n_candidates=16,
            n_facilities=30,
            k_max=4,
            churn_rates=(0.05, 0.25),
        )
        repeats = 1
    else:
        scale = dict(n_users=800, n_candidates=60, n_facilities=120, k_max=8)
        repeats = 3
    if args.users:
        scale["n_users"] = args.users
    if args.candidates:
        scale["n_candidates"] = args.candidates
    if args.k_max:
        scale["k_max"] = args.k_max

    out = args.out or REPO_ROOT / "BENCH_incremental_patch.json"
    payload = run_incremental_patch_benchmark(
        repeats=args.repeats or repeats, out_path=out, **scale
    )
    print(json.dumps(payload, indent=2))
    if not payload["results_identical"]:
        print("ERROR: patched instances disagree with fresh resolves")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
