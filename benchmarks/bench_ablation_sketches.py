"""Ablation — FM-sketch greedy vs exact coverage greedy (k-CIFP lineage).

This is an *accuracy* ablation: the sketched greedy's realised coverage
approaches the exact greedy's as registers grow.  At bench scale the
exact set operations are faster (coverage sets are small); the sketch's
O(m)-per-evaluation bound pays off only when coverage sets reach the
millions, which the timing column honestly shows.
"""

import time

from repro.bench import record_table
from repro.bench.datasets import dataset
from repro.sketches import exact_coverage_greedy, sketched_coverage_greedy
from repro.solvers import IQTSolver, MC2LSProblem


def register_sweep():
    ds = dataset("C", n_candidates=100, n_facilities=200)
    result = IQTSolver().solve(MC2LSProblem(ds, k=10, tau=0.5))
    cids = [c.fid for c in ds.candidates]
    t0 = time.perf_counter()
    exact_sel, exact_cov = exact_coverage_greedy(result.table, cids, k=10)
    exact_s = time.perf_counter() - t0
    rows = [
        {
            "registers": "exact",
            "coverage": exact_cov,
            "coverage_ratio": 1.0,
            "selection_overlap": "10/10",
            "greedy_s": exact_s,
        }
    ]
    for m in (16, 64, 256, 1024):
        t0 = time.perf_counter()
        sketched = sketched_coverage_greedy(result.table, cids, k=10,
                                            n_registers=m, seed=1)
        elapsed = time.perf_counter() - t0
        rows.append(
            {
                "registers": m,
                "coverage": sketched.exact_coverage,
                "coverage_ratio": sketched.exact_coverage / exact_cov,
                "selection_overlap": f"{len(set(sketched.selected) & set(exact_sel))}/10",
                "greedy_s": elapsed,
            }
        )
    return rows


def test_sketch_register_sweep(benchmark):
    rows = benchmark.pedantic(register_sweep, rounds=1, iterations=1)
    record_table("Ablation - FM-sketch greedy vs exact coverage greedy", rows)
    by_m = {r["registers"]: r for r in rows}
    # Larger sketches must land within a few percent of the exact greedy.
    assert by_m[1024]["coverage_ratio"] > 0.97
    assert by_m[256]["coverage_ratio"] > 0.9
