"""Table I — IQT vs IQT-PINO wall time as |C ∪ F| grows (τ = 0.9).

Expected shape: IQT-PINO's extra IA range queries cost more than the
pruning they add, so its runtime matches or exceeds IQT at every size.
"""

from repro.bench import record_table
from repro.bench.experiments import table1_iqt_vs_pino


def test_table1_iqt_vs_pino(benchmark):
    rows = benchmark.pedantic(table1_iqt_vs_pino, rounds=1, iterations=1)
    record_table("Table I - IQT vs IQT-PINO runtime vs abstract facilities", rows)
    # The IA integration must not be a runtime win overall (paper: "the
    # running time for IQT-PINO even exceeds that of IQT").
    total_iqt = sum(r["IQT_s"] for r in rows)
    total_pino = sum(r["IQT-PINO_s"] for r in rows)
    assert total_pino >= total_iqt * 0.9
