"""Table II — index construction: IQuad-tree (users) vs R-tree (facilities).

Expected shape: the IQuad-tree indexes two to three orders of magnitude
more objects (positions) than the R-tree indexes facilities, yet its
per-object cost is comparable or lower.
"""

from repro.bench import record_table
from repro.bench.datasets import DEFAULT_D_HAT, DEFAULT_TAU, dataset
from repro.bench.experiments import table2_index_build
from repro.influence import paper_default_pf
from repro.spatial import IQuadTree


def test_table2_index_build(benchmark):
    ds = dataset("C")

    def build():
        return IQuadTree(ds.users, DEFAULT_D_HAT, DEFAULT_TAU, paper_default_pf(), ds.region)

    benchmark(build)
    rows = table2_index_build()
    record_table("Table II - index construction time", rows)
    for row in rows:
        assert row["IQT_positions"] > row["RT_objects"]
