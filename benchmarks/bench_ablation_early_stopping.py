"""Ablation A1 — PINOCCHIO early stopping and the NIR shape refinement.

Expected shape: early stopping cuts the positions touched during
verification without changing results; the exact rounded-square NIR test
prunes at least as many pairs as the paper's MBR relaxation.
"""

from repro.bench import record_table
from repro.bench.experiments import ablation_early_stopping, ablation_exact_rounded


def test_ablation_early_stopping(benchmark):
    rows = benchmark.pedantic(
        lambda: ablation_early_stopping("C") + ablation_early_stopping("N"),
        rounds=1,
        iterations=1,
    )
    record_table("Ablation - early stopping on/off", rows)
    by_key = {(r["dataset"], r["early_stopping"]): r for r in rows}
    for kind in ("C", "N"):
        assert (
            by_key[(kind, True)]["positions_touched"]
            <= by_key[(kind, False)]["positions_touched"]
        )


def test_ablation_exact_rounded(benchmark):
    rows = benchmark.pedantic(
        lambda: ablation_exact_rounded("C") + ablation_exact_rounded("N"),
        rounds=1,
        iterations=1,
    )
    record_table("Ablation - NIR via MBR vs exact rounded square", rows)
    by_key = {(r["dataset"], r["exact_rounded"]): r for r in rows}
    for kind in ("C", "N"):
        assert (
            by_key[(kind, True)]["pruned_frac"]
            >= by_key[(kind, False)]["pruned_frac"] - 1e-9
        )
