"""Fig. 12 — runtime as the competitor set |F| sweeps 100 → 500.

Expected shape: qualitatively the Fig. 11 picture (IQT best, then IQT-C,
k-CIFP, Baseline) with smoother growth, because competitor relationships
are only resolved for users some candidate can reach.
"""

from repro.bench import record_table
from repro.bench.svg_charts import save_runtime_figure
from repro.bench.experiments import fig12_vary_facilities


def test_fig12_vary_facilities_california(benchmark):
    rows = benchmark.pedantic(
        lambda: fig12_vary_facilities("C"), rounds=1, iterations=1
    )
    record_table("Fig 12 - runtime vs facilities (C-like)", rows)
    save_runtime_figure(rows, "facilities", "Fig 12 - runtime vs facilities (C-like)", "Fig_12_C.svg")
    assert rows[-1]["baseline_s"] > rows[-1]["iqt_s"]


def test_fig12_vary_facilities_newyork(benchmark):
    rows = benchmark.pedantic(
        lambda: fig12_vary_facilities("N"), rounds=1, iterations=1
    )
    record_table("Fig 12 - runtime vs facilities (N-like)", rows)
    save_runtime_figure(rows, "facilities", "Fig 12 - runtime vs facilities (N-like)", "Fig_12_N.svg")
    assert rows[-1]["baseline_s"] > rows[-1]["iqt_s"]
