"""Fig. 13 — runtime as the probability threshold τ sweeps 0.1 → 0.9.

Expected shape: Baseline is flat in τ (it always evaluates everything);
k-CIFP accelerates as τ rises (shrinking mMR tightens IA/NIB); the IQT
family is dataset-dependent (rising τ strengthens NIR but weakens IS).
"""

import statistics

from repro.bench import record_table
from repro.bench.svg_charts import save_runtime_figure
from repro.bench.experiments import fig13_vary_tau


def test_fig13_vary_tau_california(benchmark):
    rows = benchmark.pedantic(lambda: fig13_vary_tau("C"), rounds=1, iterations=1)
    record_table("Fig 13 - runtime vs tau (C-like)", rows)
    save_runtime_figure(rows, "tau", "Fig 13 - runtime vs tau (C-like)", "Fig_13_C.svg")
    base = [r["baseline_s"] for r in rows]
    # Baseline is roughly flat across tau (its cost does not depend on it).
    assert max(base) < 2.5 * min(base)


def test_fig13_vary_tau_newyork(benchmark):
    rows = benchmark.pedantic(lambda: fig13_vary_tau("N"), rounds=1, iterations=1)
    record_table("Fig 13 - runtime vs tau (N-like)", rows)
    save_runtime_figure(rows, "tau", "Fig 13 - runtime vs tau (N-like)", "Fig_13_N.svg")
    # IQT beats Baseline at every tau.
    assert all(r["iqt_s"] < r["baseline_s"] for r in rows)
