"""Fig. 15 — effect of the position count r on the C-like data.

Protocol: keep users with ≥ 30 positions, sample exactly r ∈ {10..30}
from each.  Expected shape: runtime and verification cost (positions
touched) rise with r; IQT stays ahead throughout because pruning plus
early stopping touch only r' < r positions per surviving pair.
"""

from repro.bench import record_table
from repro.bench.experiments import fig15_16_vary_r


def test_fig15_vary_r_california(benchmark):
    rows = benchmark.pedantic(lambda: fig15_16_vary_r("C"), rounds=1, iterations=1)
    record_table("Fig 15 - runtime and verification cost vs r (C-like)", rows)
    # Verification cost grows with r for the un-pruned baseline...
    assert rows[-1]["baseline_pos_touched"] > rows[0]["baseline_pos_touched"]
    # ...and IQT touches far fewer positions than Baseline at every r.
    for row in rows:
        assert row["iqt_pos_touched"] < row["baseline_pos_touched"]
