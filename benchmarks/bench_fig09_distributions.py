"""Fig. 9 — distribution characterisation of the two datasets.

The paper's scatter plots show uniform spread in California and heavy
clustering in New York; we report the summary statistics that drive the
pruning analyses (position density, MBR area ratio, occupancy Gini,
MBR-overlap fraction).
"""

from pathlib import Path

from repro.bench import record_table
from repro.bench.ascii_viz import render_dataset
from repro.bench.datasets import dataset
from repro.bench.experiments import fig09_distributions


def test_fig09_distributions(benchmark):
    rows = benchmark.pedantic(fig09_distributions, rounds=1, iterations=1)
    record_table("Fig 9 - dataset distribution statistics", rows)
    # The paper's Fig. 9 is a scatter plot; persist ASCII renders of both
    # populations so the uniform-vs-skewed contrast is inspectable.
    results = Path("benchmarks/results")
    try:
        results.mkdir(parents=True, exist_ok=True)
        for kind in ("C", "N"):
            art = render_dataset(dataset(kind), width=72, height=24)
            (results / f"Fig_9_scatter_{kind}.txt").write_text(art + "\n")
    except OSError:
        pass
    by_kind = {r["dataset"]: r for r in rows}
    c, n = by_kind["C-like"], by_kind["N-like"]
    # The calibration contract: N is more skewed, C has larger user MBRs.
    assert n["gini"] > c["gini"]
    assert c["mbr_ratio"] > n["mbr_ratio"]
    # A visible share of user-MBR pairs overlap in both populations (the
    # pruning-hardness premise of the paper): a random pair of users
    # collides despite each MBR covering only 3-9 % of the region.
    assert n["mbr_overlap_frac"] > 0.05
    assert c["mbr_overlap_frac"] > 0.02
