"""Extension bench — Euclidean vs road-network metric.

Sweeps the road density of a grid city and reports how the selection and
captured demand react.  Expected shape: as the network gets coarser,
road distances grow, coverage shrinks, and the Euclidean plan scored on
the roads falls further behind the network-aware plan.
"""

from repro.bench import record_table
from repro.bench.datasets import dataset
from repro.competition import cinf_group
from repro.roadnet import grid_network, solve_on_network
from repro.solvers import IQTSolver, MC2LSProblem


def density_sweep():
    ds = dataset("N", n_candidates=40, n_facilities=80).subsample_users(250, seed=1)
    region = ds.region
    side = max(region.width, region.height)
    problem = MC2LSProblem(ds, k=5, tau=0.5)
    euclid = IQTSolver().solve(problem)
    rows = []
    for spacing in (1.0, 2.0, 4.0):
        network = grid_network(side_km=side, spacing_km=spacing, seed=2)
        # Anchor the grid onto the dataset region.
        for node in network.nodes():
            p = network.position(node)
            network.add_node(node, p.x + region.min_x, p.y + region.min_y)
        net = solve_on_network(ds, network, k=5, tau=0.5)
        euclid_on_roads = cinf_group(net.table, list(euclid.selected))
        covered = set()
        for users in net.table.omega_c.values():
            covered |= users
        rows.append(
            {
                "grid_spacing_km": spacing,
                "network_plan_value": net.objective,
                "euclid_plan_on_roads": euclid_on_roads,
                "candidate_coverage": len(covered),
                "shared_sites": len(set(net.selected) & set(euclid.selected)),
                "dijkstra_runs": net.dijkstra_runs,
            }
        )
    return rows


def test_roadnet_density_sweep(benchmark):
    rows = benchmark.pedantic(density_sweep, rounds=1, iterations=1)
    record_table("Extension - Euclidean vs road-network metric (N-like)", rows)
    for row in rows:
        # The network-aware plan can never lose under its own metric.
        assert row["network_plan_value"] >= row["euclid_plan_on_roads"] - 1e-9
    # Coarser roads -> longer distances -> fewer reachable users.  (The
    # *objective* is not monotone: losing competitor overlap raises the
    # per-user share, which is exactly the competition effect.)
    assert rows[-1]["candidate_coverage"] <= rows[0]["candidate_coverage"]
