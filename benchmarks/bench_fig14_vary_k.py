"""Fig. 14 — runtime as the budget k sweeps 5 → 25.

Expected shape: runtimes are nearly flat in k (influence resolution
dominates; the greedy overlap handling is negligible), and every
algorithm returns the identical k-set at every point — the sweep helper
asserts that agreement internally.
"""

from repro.bench import record_table
from repro.bench.svg_charts import save_runtime_figure
from repro.bench.experiments import fig14_vary_k


def test_fig14_vary_k_california(benchmark):
    rows = benchmark.pedantic(lambda: fig14_vary_k("C"), rounds=1, iterations=1)
    record_table("Fig 14 - runtime vs k (C-like)", rows)
    save_runtime_figure(rows, "k", "Fig 14 - runtime vs k (C-like)", "Fig_14_C.svg")
    iqt = [r["iqt_s"] for r in rows]
    assert max(iqt) < 3 * min(iqt)  # near-constant in k


def test_fig14_vary_k_newyork(benchmark):
    rows = benchmark.pedantic(lambda: fig14_vary_k("N"), rounds=1, iterations=1)
    record_table("Fig 14 - runtime vs k (N-like)", rows)
    save_runtime_figure(rows, "k", "Fig 14 - runtime vs k (N-like)", "Fig_14_N.svg")
    iqt = [r["iqt_s"] for r in rows]
    assert max(iqt) < 3 * min(iqt)
