"""Effect of the leaf diagonal d̂ (§VII prose — figure omitted in paper).

Expected shape: d̂ barely moves the pruning effectiveness, and the
IQuad-tree build remains a tiny share of the total solve time (the paper
reports ~0.5 % of the Baseline cost).
"""

from repro.bench import record_table
from repro.bench.experiments import fig_dhat_leaf_diagonal


def test_dhat_leaf_diagonal(benchmark):
    rows = benchmark.pedantic(
        lambda: fig_dhat_leaf_diagonal("C") + fig_dhat_leaf_diagonal("N"),
        rounds=1,
        iterations=1,
    )
    record_table("Effect of d_hat - IQT runtime and index share", rows)
    for row in rows:
        # Pruning effectiveness is insensitive to d_hat...
        assert row["saved_frac"] > 0.5
        # ...and index construction stays a small share of the solve.
        assert row["index_share"] < 0.6
