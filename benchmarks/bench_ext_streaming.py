"""Extension bench — streaming MC²LS vs batch re-solving.

Expected shape: processing one arrival or departure incrementally is far
cheaper than re-solving the batch problem from scratch, while the
maintained selection stays identical to the batch answer.
"""

import time

import numpy as np

from repro.bench import record_table
from repro.bench.datasets import dataset
from repro.entities import MovingUser
from repro.solvers import IQTSolver, MC2LSProblem
from repro.streaming import StreamingMC2LS


def streaming_vs_batch():
    ds = dataset("N", n_candidates=50, n_facilities=100)
    session = StreamingMC2LS.from_dataset(ds, k=5, tau=0.7)
    rng = np.random.default_rng(0)
    region = ds.region

    # 40 churn events: half departures, half arrivals.
    uids = [u.uid for u in ds.users]
    t0 = time.perf_counter()
    for i in range(20):
        session.remove_user(uids[i])
    for uid in range(10_000, 10_020):
        center = rng.uniform(
            [region.min_x, region.min_y], [region.max_x, region.max_y]
        )
        positions = np.clip(
            rng.normal(center, 1.0, size=(10, 2)),
            [region.min_x, region.min_y],
            [region.max_x, region.max_y],
        )
        session.add_user(MovingUser(uid, positions))
    event_time = (time.perf_counter() - t0) / 40.0

    t0 = time.perf_counter()
    outcome = session.current_selection()
    selection_time = time.perf_counter() - t0

    t0 = time.perf_counter()
    batch = IQTSolver().solve(
        MC2LSProblem(session.current_dataset(), k=5, tau=0.7)
    )
    batch_time = time.perf_counter() - t0
    assert outcome.selected == batch.selected

    return [
        {
            "events": 40,
            "per_event_ms": event_time * 1e3,
            "selection_ms": selection_time * 1e3,
            "batch_resolve_ms": batch_time * 1e3,
            "speedup_vs_batch": batch_time / (event_time + selection_time),
            "selection_matches_batch": True,
        }
    ]


def test_streaming_vs_batch(benchmark):
    rows = benchmark.pedantic(streaming_vs_batch, rounds=1, iterations=1)
    record_table("Extension - streaming events vs batch re-solve (N-like)", rows)
    row = rows[0]
    # One event plus a fresh greedy must beat a full batch re-solve.
    assert row["speedup_vs_batch"] > 1.0
