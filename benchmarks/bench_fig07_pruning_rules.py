"""Fig. 7 — effect of the IS and NIR pruning rules.

(a) fraction of (facility, user) pairs decided by each rule per τ;
(b) pruning effect and runtime of IQT-C vs IQT vs IQT-PINO per τ.

Expected shape (paper §VII-B): NIR dominates IS on the uniform C-like
data (>90 % pruned); IS strengthens and NIR weakens on the dense, skewed
N-like data; rising τ weakens IS and strengthens NIR; NIB (IQT over
IQT-C) only pays off under skew.
"""

from repro.bench import record_table
from repro.bench.experiments import fig07a_rule_effect, fig07b_variant_effect


def test_fig07a_rule_effect(benchmark):
    rows = benchmark.pedantic(
        lambda: fig07a_rule_effect("C") + fig07a_rule_effect("N"),
        rounds=1,
        iterations=1,
    )
    record_table("Fig 7a - IS vs NIR pruning effect per tau", rows)
    for row in rows:
        assert 0 <= row["IS_confirmed_frac"] <= 1
        assert 0 <= row["NIR_pruned_frac"] <= 1
    # NIR dominates IS on the uniform dataset (paper: >90 % vs small).
    c_rows = [r for r in rows if r["dataset"] == "C"]
    assert all(r["NIR_pruned_frac"] > r["IS_confirmed_frac"] for r in c_rows)


def test_fig07b_variant_effect(benchmark):
    rows = benchmark.pedantic(
        lambda: fig07b_variant_effect("C") + fig07b_variant_effect("N"),
        rounds=1,
        iterations=1,
    )
    record_table("Fig 7b - IQT-C vs IQT vs IQT-PINO pruning effect per tau", rows)
    for row in rows:
        # Adding NIB (IQT) can only decide at least as many pairs as IQT-C,
        # and adding IA (IQT-PINO) at least as many as IQT.
        assert row["iqt_saved_frac"] >= row["iqt-c_saved_frac"] - 1e-9
        assert row["iqt-pino_saved_frac"] >= row["iqt_saved_frac"] - 1e-9
