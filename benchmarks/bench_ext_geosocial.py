"""Extension bench — geo-social MC²LS (the paper's future-work direction).

Sweeps the word-of-mouth weight β and reports how far the geo-social
selection drifts from the pure spatial one, and what that drift buys
under the combined objective.  Expected shape: at β = 0 the plans
coincide; growing β trades a little spatial capture for social reach,
and the combined value of the geo-social plan dominates the spatial
plan's at every β.
"""

from repro.bench import record_table
from repro.bench.datasets import dataset
from repro.social import (
    CascadeSampler,
    GeoSocialObjective,
    GeoSocialSolver,
    geo_social_graph,
    random_interest_model,
)
from repro.solvers import MC2LSProblem


def beta_sweep():
    ds = dataset("N", n_candidates=50, n_facilities=100)
    graph = geo_social_graph(ds.users, mean_degree=8.0, seed=1)
    interests = random_interest_model(
        [u.uid for u in ds.users], [c.fid for c in ds.candidates], seed=1
    )
    problem = MC2LSProblem(ds, k=5, tau=0.6)
    rows = []
    for beta in (0.0, 0.1, 0.3, 0.6, 1.0):
        # beta = 0 is run without interests so it must reduce exactly to
        # the spatial MC2LS plan; the other points use the full model.
        solver = GeoSocialSolver(
            graph=graph,
            interests=None if beta == 0.0 else interests,
            beta=beta,
            seed=2,
        )
        result = solver.solve(problem)
        sampler = CascadeSampler(graph, probability=0.1, n_worlds=64, seed=2)
        objective = GeoSocialObjective(
            result.spatial_result.table,
            interests=interests,
            sampler=sampler,
            beta=beta,
        )
        geo_value = objective.value(list(result.selected))
        spatial_value = objective.value(list(result.spatial_only))
        overlap = len(set(result.selected) & set(result.spatial_only))
        rows.append(
            {
                "beta": beta,
                "geo_social_value": geo_value,
                "spatial_plan_value": spatial_value,
                "plan_overlap": f"{overlap}/5",
                "solve_s": result.timings["total"],
            }
        )
    return rows


def test_geosocial_beta_sweep(benchmark):
    rows = benchmark.pedantic(beta_sweep, rounds=1, iterations=1)
    record_table("Extension - geo-social beta sweep (N-like)", rows)
    for row in rows:
        # The geo-social greedy optimises the combined objective directly,
        # so it can never lose to the spatial plan under that objective.
        assert row["geo_social_value"] >= row["spatial_plan_value"] - 1e-9
    assert rows[0]["plan_overlap"] == "5/5"  # beta = 0 reduces to MC2LS
