"""Micro-benchmarks of the core operations behind every experiment.

These give pytest-benchmark stable, repeatable timings for the building
blocks (index construction, traversal, range query, influence check), so
regressions in any substrate are visible independently of the end-to-end
figures.
"""

import numpy as np
import pytest

from repro.bench.datasets import DEFAULT_D_HAT, DEFAULT_TAU, dataset
from repro.geo import Rect
from repro.influence import InfluenceEvaluator, paper_default_pf
from repro.spatial import IQuadTree, RTree


@pytest.fixture(scope="module")
def c_dataset():
    return dataset("C")


@pytest.fixture(scope="module")
def iqt(c_dataset):
    return IQuadTree(
        c_dataset.users, DEFAULT_D_HAT, DEFAULT_TAU, paper_default_pf(), c_dataset.region
    )


def test_iquadtree_traversal(benchmark, c_dataset, iqt):
    facilities = c_dataset.abstract_facilities

    def traverse_all():
        for v in facilities:
            iqt.traverse(v.x, v.y)

    benchmark(traverse_all)


def test_rtree_range_query(benchmark, c_dataset):
    tree = RTree.from_points((v.location, v) for v in c_dataset.abstract_facilities)
    region = c_dataset.region
    queries = [
        Rect(
            region.min_x + i * region.width / 32,
            region.min_y + i * region.height / 32,
            region.min_x + i * region.width / 32 + 10,
            region.min_y + i * region.height / 32 + 10,
        )
        for i in range(32)
    ]

    def run_queries():
        return sum(len(tree.range_query(q)) for q in queries)

    benchmark(run_queries)


def test_influence_evaluation(benchmark, c_dataset):
    ev = InfluenceEvaluator(paper_default_pf(), DEFAULT_TAU)
    users = c_dataset.users[:200]
    v = c_dataset.candidates[0]

    def evaluate():
        return sum(ev.influences(v.x, v.y, u.positions) for u in users)

    benchmark(evaluate)


def test_greedy_phase(benchmark, c_dataset):
    from repro.solvers import IQTSolver, MC2LSProblem, greedy_select

    problem = MC2LSProblem(c_dataset, k=10, tau=DEFAULT_TAU)
    result = IQTSolver().solve(problem)
    cids = [c.fid for c in c_dataset.candidates]

    def select():
        return greedy_select(result.table, cids, 10)

    benchmark(select)
