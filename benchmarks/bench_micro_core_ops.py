"""Micro-benchmarks of the core operations behind every experiment.

These give pytest-benchmark stable, repeatable timings for the building
blocks (index construction, traversal, range query, influence check), so
regressions in any substrate are visible independently of the end-to-end
figures.

Run directly (``python benchmarks/bench_micro_core_ops.py [--smoke]``)
to time the scalar-vs-batch verification kernel on a >= 1k-user batch
and write the ``BENCH_batch_verify.json`` trajectory point at the repo
root; ``--bench greedy`` instead times the scalar greedy against the
vectorized CSR selection kernel on a >= 50k-user table and writes
``BENCH_greedy_select.json``.  The test suite invokes ``--smoke`` for
both, so neither comparison can rot.
"""

import argparse
import json
from pathlib import Path

import numpy as np
import pytest

from repro.bench.datasets import DEFAULT_D_HAT, DEFAULT_TAU, dataset
from repro.bench.timing import repeat_timed
from repro.entities import MovingUser
from repro.geo import Rect
from repro.influence import (
    BatchInfluenceEvaluator,
    InfluenceEvaluator,
    PositionArena,
    paper_default_pf,
)
from repro.spatial import IQuadTree, RTree

REPO_ROOT = Path(__file__).resolve().parents[1]


@pytest.fixture(scope="module")
def c_dataset():
    return dataset("C")


@pytest.fixture(scope="module")
def iqt(c_dataset):
    return IQuadTree(
        c_dataset.users, DEFAULT_D_HAT, DEFAULT_TAU, paper_default_pf(), c_dataset.region
    )


def test_iquadtree_traversal(benchmark, c_dataset, iqt):
    facilities = c_dataset.abstract_facilities

    def traverse_all():
        for v in facilities:
            iqt.traverse(v.x, v.y)

    benchmark(traverse_all)


def test_rtree_range_query(benchmark, c_dataset):
    tree = RTree.from_points((v.location, v) for v in c_dataset.abstract_facilities)
    region = c_dataset.region
    queries = [
        Rect(
            region.min_x + i * region.width / 32,
            region.min_y + i * region.height / 32,
            region.min_x + i * region.width / 32 + 10,
            region.min_y + i * region.height / 32 + 10,
        )
        for i in range(32)
    ]

    def run_queries():
        return sum(len(tree.range_query(q)) for q in queries)

    benchmark(run_queries)


def test_influence_evaluation(benchmark, c_dataset):
    ev = InfluenceEvaluator(paper_default_pf(), DEFAULT_TAU)
    users = c_dataset.users[:200]
    v = c_dataset.candidates[0]

    def evaluate():
        return sum(ev.influences(v.x, v.y, u.positions) for u in users)

    benchmark(evaluate)


def test_greedy_phase(benchmark, c_dataset):
    from repro.solvers import IQTSolver, MC2LSProblem, greedy_select

    problem = MC2LSProblem(c_dataset, k=10, tau=DEFAULT_TAU)
    result = IQTSolver().solve(problem)
    cids = [c.fid for c in c_dataset.candidates]

    def select():
        return greedy_select(result.table, cids, 10)

    benchmark(select)


def test_influence_evaluation_batch(benchmark, c_dataset):
    """The batched counterpart of test_influence_evaluation."""
    ev = BatchInfluenceEvaluator(paper_default_pf(), DEFAULT_TAU)
    arena = c_dataset.arena
    rows = np.arange(min(200, len(arena)), dtype=np.int64)
    v = c_dataset.candidates[0]

    def evaluate():
        return int(ev.influences_users(v.x, v.y, arena, rows).sum())

    benchmark(evaluate)


# ----------------------------------------------------------------------
# Scalar-vs-batch verification kernel (the BENCH_batch_verify trajectory
# point; `--smoke` is wired into the test suite).
# ----------------------------------------------------------------------
def _verification_population(n_users: int, seed: int = 0) -> list:
    """A deterministic >= 1k-user population with a realistic r mix."""
    rng = np.random.default_rng(seed)
    users = []
    for uid in range(n_users):
        r = int(np.clip(rng.lognormal(mean=2.9, sigma=0.6), 2, 200))
        center = rng.uniform(-10, 10, 2)
        users.append(MovingUser(uid, rng.normal(center, 2.0, size=(r, 2))))
    return users


def run_batch_verify_benchmark(
    n_users: int = 1200, repeats: int = 3, out_path: Path = None
) -> dict:
    """Time the scalar loop against the batch kernel on one big batch.

    Returns (and writes to ``out_path``) the recorded trajectory point:
    median-of-``repeats`` wall-clock for both paths (with the min/max
    spread recorded under ``timings``), the speedup, and a bit-identity
    check of the decisions and counters.
    """
    users = _verification_population(n_users)
    arena = PositionArena.from_users(users)
    pf = paper_default_pf()
    vx, vy = 0.0, 0.0

    def scalar_pass():
        ev = InfluenceEvaluator(pf, DEFAULT_TAU)
        return np.array([ev.influences(vx, vy, u.positions) for u in users]), ev.stats

    def batch_pass():
        ev = BatchInfluenceEvaluator(pf, DEFAULT_TAU)
        return ev.influences_users(vx, vy, arena), ev.stats

    scalar = repeat_timed(scalar_pass, repeats)
    batch = repeat_timed(batch_pass, repeats)
    scalar_dec, scalar_stats = scalar.result
    batch_dec, batch_stats = batch.result
    payload = {
        "benchmark": "batch_verify",
        "n_users": n_users,
        "n_positions": int(arena.n_positions),
        "scalar_s": scalar.median_s,
        "batch_s": batch.median_s,
        "speedup": scalar.median_s / batch.median_s,
        "timings": {"scalar": scalar.summary(), "batch": batch.summary()},
        "decisions_equal": bool(np.array_equal(scalar_dec, batch_dec)),
        "stats_equal": scalar_stats.__dict__ == batch_stats.__dict__,
        "influenced": int(batch_dec.sum()),
    }
    if out_path is not None:
        out_path.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


# ----------------------------------------------------------------------
# Scalar-vs-CSR greedy selection (the BENCH_greedy_select trajectory
# point; `--bench greedy --smoke` is wired into the test suite).
# ----------------------------------------------------------------------
def _selection_table(n_users: int, n_candidates: int, seed: int = 0):
    """A deterministic influence table with skewed coverage sets."""
    from repro.competition import InfluenceTable

    rng = np.random.default_rng(seed)
    # Coverage sizes follow a lognormal (few hub candidates, many small),
    # bounded so the densified matrix stays a realistic sparsity.
    sizes = np.clip(
        rng.lognormal(mean=np.log(n_users / 50.0), sigma=0.8, size=n_candidates),
        1,
        n_users // 5,
    ).astype(np.int64)
    omega = {
        cid: set(rng.choice(n_users, size=int(sizes[cid]), replace=False).tolist())
        for cid in range(n_candidates)
    }
    f_o = {
        uid: set(range(1000, 1000 + int(c)))
        for uid, c in enumerate(rng.integers(0, 6, size=n_users).tolist())
    }
    return InfluenceTable.from_mappings(omega, f_o)


def run_greedy_select_benchmark(
    n_users: int = 50_000,
    n_candidates: int = 500,
    k: int = 10,
    repeats: int = 3,
    out_path: Path = None,
) -> dict:
    """Time the scalar greedy against the CSR selection kernel.

    Returns (and writes to ``out_path``) the recorded trajectory point:
    median-of-``repeats`` wall-clock for both paths (min/max spread under
    ``timings``), the speedup, and the selection-identity checks (same
    tuple, bit-equal gains).
    """
    from repro.solvers import coverage_select, greedy_select

    table = _selection_table(n_users, n_candidates)
    cids = list(range(n_candidates))

    scalar = repeat_timed(lambda: greedy_select(table, cids, k), repeats)
    fast = repeat_timed(lambda: coverage_select(table, cids, k), repeats)
    scalar_out, fast_out = scalar.result, fast.result
    payload = {
        "benchmark": "greedy_select",
        "n_users": n_users,
        "n_candidates": n_candidates,
        "k": k,
        "scalar_s": scalar.median_s,
        "fast_s": fast.median_s,
        "speedup": scalar.median_s / fast.median_s,
        "timings": {"scalar": scalar.summary(), "fast": fast.summary()},
        "selections_equal": scalar_out.selected == fast_out.selected,
        "gains_equal": scalar_out.gains == fast_out.gains,
        "objective": fast_out.objective,
        "scalar_evaluations": scalar_out.evaluations,
        "fast_evaluations": fast_out.evaluations,
    }
    if out_path is not None:
        out_path.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Core-operation microbenchmarks (verification / selection)"
    )
    parser.add_argument(
        "--bench",
        choices=["batch", "greedy"],
        default="batch",
        help="which kernel to benchmark (default: the verification kernel)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="quick run at reduced scale; used by the test suite",
    )
    parser.add_argument("--users", type=int, default=None)
    parser.add_argument("--candidates", type=int, default=500)
    parser.add_argument("--k", type=int, default=10)
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="output JSON path (default: BENCH_<bench>.json at the repo root)",
    )
    args = parser.parse_args(argv)

    if args.bench == "batch":
        out = args.out or REPO_ROOT / "BENCH_batch_verify.json"
        payload = run_batch_verify_benchmark(
            n_users=args.users or 1200,
            # Odd repeat counts keep the median robust to one slow
            # sample (smoke shares a core with the rest of the suite).
            repeats=args.repeats or (3 if args.smoke else 5),
            out_path=out,
        )
        ok = payload["decisions_equal"] and payload["stats_equal"]
    else:
        out = args.out or REPO_ROOT / "BENCH_greedy_select.json"
        if args.smoke:
            n_users, n_candidates, repeats = 8_000, 200, 3
        else:
            n_users, n_candidates, repeats = 50_000, args.candidates, 3
        payload = run_greedy_select_benchmark(
            n_users=args.users or n_users,
            n_candidates=n_candidates,
            k=args.k,
            repeats=args.repeats or repeats,
            out_path=out,
        )
        ok = payload["selections_equal"] and payload["gains_equal"]
    print(json.dumps(payload, indent=2))
    if not ok:
        print("ERROR: fast kernel disagrees with the scalar reference")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
