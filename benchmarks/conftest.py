"""Benchmark suite configuration.

Each ``bench_*.py`` file reproduces one table or figure of the paper: it
times a headline operation with pytest-benchmark and registers the full
row/series table via :func:`repro.bench.record_table`.  This conftest
replays all registered tables in the terminal summary, so a plain
``pytest benchmarks/ --benchmark-only`` run shows every reproduced
artifact without needing ``-s``.
"""

from __future__ import annotations

from repro.bench import registered_tables


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    tables = registered_tables()
    if not tables:
        return
    terminalreporter.section("reproduced paper artifacts")
    for title, rendered in tables:
        terminalreporter.write_line("")
        terminalreporter.write_line(f"== {title} ==")
        for line in rendered.splitlines():
            terminalreporter.write_line(line)
