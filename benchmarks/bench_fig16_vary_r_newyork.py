"""Fig. 16 — effect of the position count r on the N-like data.

As Fig. 15 but on the skewed dataset, where far fewer users clear the
30-position eligibility bar (the paper keeps only 233 of 2,725) and the
pruning advantage is correspondingly noisier.
"""

from repro.bench import record_table
from repro.bench.experiments import fig15_16_vary_r


def test_fig16_vary_r_newyork(benchmark):
    rows = benchmark.pedantic(lambda: fig15_16_vary_r("N"), rounds=1, iterations=1)
    record_table("Fig 16 - runtime and verification cost vs r (N-like)", rows)
    for row in rows:
        assert row["iqt_pos_touched"] < row["baseline_pos_touched"]
