"""Serving-engine throughput: cold direct solves vs the warm engine.

Runs one what-if query batch (a ``k`` sweep crossed with several τ
values) three ways:

1. **cold** — each query is a fresh, direct ``IQTSolver.solve`` call,
   re-resolving the influence table every time (what a caller without
   the engine pays);
2. **warm ×1** — the same batch through a 1-thread
   :class:`~repro.service.SelectionEngine` whose caches are warm;
3. **warm ×4** — the warm batch on a 4-thread engine.

Every engine result is checked bit-identical (selection, gains,
objective) to its direct counterpart before any timing is reported.
Writes the ``BENCH_serve_throughput.json`` trajectory point at the repo
root; ``--smoke`` (wired into the test suite) runs a reduced scale to a
temporary path so the committed point cannot rot.
"""

import argparse
import json
from pathlib import Path

from repro.bench.timing import repeat_timed
from repro.data import california_like
from repro.service import SelectionEngine, SelectionQuery, solve_queries
from repro.solvers import IQTSolver, MC2LSProblem

REPO_ROOT = Path(__file__).resolve().parents[1]


def _query_batch(k_max, taus):
    return [
        SelectionQuery(k=k, tau=tau)
        for tau in taus
        for k in range(1, k_max + 1)
    ]


def run_serve_throughput_benchmark(
    n_users: int = 800,
    n_candidates: int = 60,
    n_facilities: int = 120,
    k_max: int = 8,
    taus=(0.6, 0.7),
    repeats: int = 3,
    out_path: Path = None,
) -> dict:
    """Time cold direct solves against the warm engine on one batch."""
    dataset = california_like(
        n_users=n_users,
        n_candidates=n_candidates,
        n_facilities=n_facilities,
        seed=0,
    )
    queries = _query_batch(k_max, taus)

    def cold_pass():
        return [
            IQTSolver().solve(MC2LSProblem(dataset, k=q.k, tau=q.tau))
            for q in queries
        ]

    cold = repeat_timed(cold_pass, repeats)
    cold_s, direct = cold.median_s, cold.result

    def warm_engine(threads):
        engine = SelectionEngine(dataset, max_workers=threads)
        solve_queries(engine, queries)  # warm both caches
        warm = repeat_timed(lambda: solve_queries(engine, queries), repeats)
        stats = engine.stats()
        engine.shutdown()
        return warm, stats

    warm1, stats1 = warm_engine(1)
    warm4, stats4 = warm_engine(4)
    warm1_s, served1 = warm1.median_s, warm1.result
    warm4_s, served4 = warm4.median_s, warm4.result

    identical = all(
        s.selected == d.selected and s.gains == d.gains and s.objective == d.objective
        for served in (served1, served4)
        for s, d in zip(served, direct)
    )
    n = len(queries)
    payload = {
        "benchmark": "serve_throughput",
        "n_users": n_users,
        "n_candidates": n_candidates,
        "n_facilities": n_facilities,
        "n_queries": n,
        "k_max": k_max,
        "taus": list(taus),
        "cold_s": cold_s,
        "warm_1t_s": warm1_s,
        "warm_4t_s": warm4_s,
        "timings": {
            "cold": cold.summary(),
            "warm_1t": warm1.summary(),
            "warm_4t": warm4.summary(),
        },
        "cold_qps": n / cold_s,
        "warm_1t_qps": n / warm1_s,
        "warm_4t_qps": n / warm4_s,
        "speedup_warm_1t": cold_s / warm1_s,
        "speedup_warm_4t": cold_s / warm4_s,
        "results_identical": identical,
        "result_cache_hit_rate_1t": stats1["result_cache"]["hit_rate"],
        "result_cache_hit_rate_4t": stats4["result_cache"]["hit_rate"],
    }
    if out_path is not None:
        out_path.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Serving-engine throughput: cold direct solves vs warm cache"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="quick run at reduced scale; used by the test suite",
    )
    parser.add_argument("--users", type=int, default=None)
    parser.add_argument("--candidates", type=int, default=None)
    parser.add_argument("--k-max", type=int, default=None)
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="output JSON path (default: BENCH_serve_throughput.json at the repo root)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        scale = dict(n_users=200, n_candidates=20, n_facilities=40, k_max=4)
        repeats = 2
    else:
        scale = dict(n_users=800, n_candidates=60, n_facilities=120, k_max=8)
        repeats = 3
    if args.users:
        scale["n_users"] = args.users
    if args.candidates:
        scale["n_candidates"] = args.candidates
    if args.k_max:
        scale["k_max"] = args.k_max

    out = args.out or REPO_ROOT / "BENCH_serve_throughput.json"
    payload = run_serve_throughput_benchmark(
        repeats=args.repeats or repeats, out_path=out, **scale
    )
    print(json.dumps(payload, indent=2))
    if not payload["results_identical"]:
        print("ERROR: engine results disagree with the direct solver")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
