"""Fig. 10 — runtime of the four algorithms as |Ω| grows.

Expected shape: every algorithm scales with the user count; the
linear-scan Baseline is slowest by an order of magnitude or more; the
IQT family leads on the C-like data, with k-CIFP between them and
Baseline.
"""

from repro.bench import record_table
from repro.bench.svg_charts import save_runtime_figure
from repro.bench.experiments import fig10_vary_users


def test_fig10_vary_users_california(benchmark):
    rows = benchmark.pedantic(lambda: fig10_vary_users("C"), rounds=1, iterations=1)
    record_table("Fig 10 - runtime vs users (C-like)", rows)
    save_runtime_figure(rows, "users", "Fig 10 - runtime vs users (C-like)", "Fig_10_C.svg")
    top = rows[-1]  # largest population
    assert top["baseline_s"] > 5 * top["iqt_s"]
    assert top["baseline_s"] > top["k-cifp_s"]


def test_fig10_vary_users_newyork(benchmark):
    rows = benchmark.pedantic(lambda: fig10_vary_users("N"), rounds=1, iterations=1)
    record_table("Fig 10 - runtime vs users (N-like)", rows)
    save_runtime_figure(rows, "users", "Fig 10 - runtime vs users (N-like)", "Fig_10_N.svg")
    top = rows[-1]
    assert top["baseline_s"] > top["iqt_s"]
