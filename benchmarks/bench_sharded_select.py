"""Sharded resolve+select scaling on a large synthetic population.

Times the full engine seam — influence resolution plus greedy selection —
three ways on one >= 500k-user synthetic population:

1. **single-process** — the engine's in-process path:
   ``resolve_all_pairs`` (batched kernel) into an ``InfluenceTable``,
   then the CSR ``CoverageMatrix.select``;
2. **sharded x W** — a :class:`~repro.service.ShardCoordinator` with
   ``W`` worker processes for each requested worker count (1/2/4 by
   default): shared-memory arena fan-out, per-shard batched resolve,
   distributed CELF greedy.

Every sharded outcome is checked bit-identical (selections, per-round
gains, objective) to the single-process reference, and the merged
resolution counters must equal the single-process ``EvaluationStats``,
before any timing is reported.  Timings follow the repeats/median/spread
discipline of :mod:`repro.bench.timing`; the payload records
``cpu_count`` so single-core containers (where worker processes time-slice
one core and the parallel speedup is structural, not superlinear) read
honestly.  Writes the ``BENCH_sharded_select.json`` trajectory point at
the repo root; ``--smoke`` (wired into the test suite and CI) runs a
reduced scale to a temporary path so the committed point cannot rot.
"""

import argparse
import json
import os
from pathlib import Path

from repro.bench.timing import repeat_timed
from repro.competition import InfluenceTable
from repro.data.synthetic import SyntheticSpec, generate_population
from repro.influence import InfluenceEvaluator, paper_default_pf
from repro.service import ShardCoordinator
from repro.service.snapshot import DatasetSnapshot
from repro.solvers import CoverageMatrix
from repro.solvers.base import resolve_all_pairs

REPO_ROOT = Path(__file__).resolve().parents[1]

DEFAULT_TAU = 0.7


def _population_dataset(n_users, n_candidates, n_facilities, seed=0):
    """A uniform synthetic population sized for the scaling runs.

    Mirrors the California-like fingerprint but with a lighter
    positions-per-user mean so the >= 500k-user full-scale resolve stays
    tractable on one container core.
    """
    spec = SyntheticSpec(
        n_users=n_users,
        mean_positions=8.0,
        side=200.0,
        mbr_area_ratio=0.085,
        n_clusters=0,
        cluster_sigma_fraction=0.0,
        n_pois=max(2000, n_candidates + n_facilities),
        venues_per_user=4.0,
        venue_jitter=0.2,
    )
    population = generate_population(spec, seed=seed)
    return population.dataset(
        n_candidates, n_facilities, seed=seed + 1, name="sharded-bench"
    )


def run_sharded_select_benchmark(
    n_users: int = 500_000,
    n_candidates: int = 24,
    n_facilities: int = 24,
    k: int = 8,
    tau: float = DEFAULT_TAU,
    worker_counts=(1, 2, 4),
    prepare_repeats: int = 3,
    select_repeats: int = 5,
    out_path: Path = None,
) -> dict:
    """Time single-process vs sharded resolve+select and check identity."""
    dataset = _population_dataset(n_users, n_candidates, n_facilities)
    snapshot = DatasetSnapshot.from_dataset(dataset)
    pf = paper_default_pf()

    # Single-process reference: the engine's in-process resolve + select.
    def single_resolve():
        ev = InfluenceEvaluator(pf, tau)
        omega, f_o = resolve_all_pairs(dataset, ev, batch_verify=True)
        return InfluenceTable.from_mappings(omega, f_o), ev.stats

    ref_prepare = repeat_timed(single_resolve, prepare_repeats)
    table, ref_stats = ref_prepare.result
    cids = [c.fid for c in dataset.candidates]
    matrix = CoverageMatrix(table, cids)
    ref_select = repeat_timed(lambda: matrix.select(k), select_repeats)
    ref_out = ref_select.result
    ref_total = ref_prepare.median_s + ref_select.median_s

    workers_payload = {}
    identical = True
    for w in worker_counts:
        with ShardCoordinator(w) as coord:

            def sharded_prepare():
                coord.detach()  # defeat the config cache: re-fan-out
                coord.prepare(snapshot, tau, pf)

            prep = repeat_timed(sharded_prepare, prepare_repeats)
            sel = repeat_timed(lambda: coord.select(k), select_repeats)
            out = sel.result
            stats = coord.stats
        total = prep.median_s + sel.median_s
        record = {
            "prepare": prep.summary(),
            "select": sel.summary(),
            "total_median_s": total,
            "speedup_vs_single_process": ref_total / total,
            "selections_equal": out.selected == ref_out.selected,
            "gains_equal": out.gains == ref_out.gains,
            "objective_equal": out.objective == ref_out.objective,
            "stats_equal": stats.__dict__ == ref_stats.__dict__,
        }
        identical = identical and all(
            record[key]
            for key in (
                "selections_equal",
                "gains_equal",
                "objective_equal",
                "stats_equal",
            )
        )
        workers_payload[str(w)] = record
    base = workers_payload[str(worker_counts[0])]["total_median_s"]
    for w in worker_counts:
        workers_payload[str(w)]["scaling_vs_1_worker"] = (
            base / workers_payload[str(w)]["total_median_s"]
        )

    payload = {
        "benchmark": "sharded_select",
        "n_users": n_users,
        "n_candidates": n_candidates,
        "n_facilities": n_facilities,
        "n_positions": int(dataset.arena.n_positions),
        "k": k,
        "tau": tau,
        "cpu_count": os.cpu_count(),
        "worker_counts": list(worker_counts),
        "single_process": {
            "prepare": ref_prepare.summary(),
            "select": ref_select.summary(),
            "total_median_s": ref_total,
        },
        "workers": workers_payload,
        "max_speedup_vs_single_process": max(
            r["speedup_vs_single_process"] for r in workers_payload.values()
        ),
        "results_identical": identical,
    }
    if out_path is not None:
        out_path.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Sharded resolve+select scaling vs the single-process path"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="quick run at reduced scale; used by the test suite and CI",
    )
    parser.add_argument("--users", type=int, default=None)
    parser.add_argument("--candidates", type=int, default=None)
    parser.add_argument("--facilities", type=int, default=None)
    parser.add_argument("--k", type=int, default=None)
    parser.add_argument(
        "--workers",
        type=int,
        nargs="+",
        default=None,
        help="worker counts to sweep (default: 1 2 4; smoke: 1 2)",
    )
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="output JSON path (default: BENCH_sharded_select.json at the repo root)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        scale = dict(
            n_users=4_000,
            n_candidates=12,
            n_facilities=12,
            k=4,
            worker_counts=(1, 2),
            prepare_repeats=2,
            select_repeats=3,
        )
    else:
        scale = dict(
            n_users=500_000,
            n_candidates=24,
            n_facilities=24,
            k=8,
            worker_counts=(1, 2, 4),
            prepare_repeats=3,
            select_repeats=5,
        )
    if args.users:
        scale["n_users"] = args.users
    if args.candidates:
        scale["n_candidates"] = args.candidates
    if args.facilities:
        scale["n_facilities"] = args.facilities
    if args.k:
        scale["k"] = args.k
    if args.workers:
        scale["worker_counts"] = tuple(args.workers)
    if args.repeats:
        scale["prepare_repeats"] = args.repeats
        scale["select_repeats"] = args.repeats

    out = args.out or REPO_ROOT / "BENCH_sharded_select.json"
    payload = run_sharded_select_benchmark(out_path=out, **scale)
    print(json.dumps(payload, indent=2))
    if not payload["results_identical"]:
        print("ERROR: sharded results disagree with the single-process path")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
