"""Ablation A2 — greedy selection strategies and the (1 − 1/e) guarantee.

Expected shape: CELF lazy greedy returns the identical selection with far
fewer gain evaluations; on a small instance the greedy objective sits
between (1 − 1/e) and 1.0 of the exact optimum.
"""

from repro.bench import record_table
from repro.bench.experiments import ablation_greedy


def test_ablation_greedy(benchmark):
    rows = benchmark.pedantic(ablation_greedy, rounds=1, iterations=1)
    record_table("Ablation - eager vs CELF greedy; greedy vs exact", rows)
    row = rows[0]
    assert row["lazy_evals"] <= row["eager_evals"]
    assert row["greedy_over_exact"] >= row["guarantee"] - 1e-9
    assert row["greedy_over_exact"] <= 1.0 + 1e-9
