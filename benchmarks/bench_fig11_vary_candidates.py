"""Fig. 11 — runtime as the candidate set |C| sweeps 100 → 500.

Expected shape: the IQT family's batch-wise traversal absorbs extra
candidates cheaply (memoised leaves), so its lead over k-CIFP widens
with |C|; Baseline grows linearly and stays slowest.
"""

from repro.bench import record_table
from repro.bench.svg_charts import save_runtime_figure
from repro.bench.experiments import fig11_vary_candidates


def test_fig11_vary_candidates_california(benchmark):
    rows = benchmark.pedantic(
        lambda: fig11_vary_candidates("C"), rounds=1, iterations=1
    )
    record_table("Fig 11 - runtime vs candidates (C-like)", rows)
    save_runtime_figure(rows, "candidates", "Fig 11 - runtime vs candidates (C-like)", "Fig_11_C.svg")
    assert rows[-1]["baseline_s"] > rows[-1]["iqt_s"]


def test_fig11_vary_candidates_newyork(benchmark):
    rows = benchmark.pedantic(
        lambda: fig11_vary_candidates("N"), rounds=1, iterations=1
    )
    record_table("Fig 11 - runtime vs candidates (N-like)", rows)
    save_runtime_figure(rows, "candidates", "Fig 11 - runtime vs candidates (N-like)", "Fig_11_N.svg")
    assert rows[-1]["baseline_s"] > rows[-1]["iqt_s"]
