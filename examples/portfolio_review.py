#!/usr/bin/env python
"""Reviewing a selected portfolio: which sites carry the plan?

Solving is half the job; a planning team then asks which sites are
load-bearing, how contested the captured market is, and whether the
budget's tail still pays.  This example runs the full analysis toolkit
over an IQT solution of a skewed city.

Run:  python examples/portfolio_review.py
"""

from repro import IQTSolver, MC2LSProblem
from repro.analysis import (
    contested_share,
    drop_one_regret,
    marginal_curve,
    redundancy_index,
    site_reports,
)
from repro.bench.ascii_viz import render_dataset
from repro.data import new_york_like


def main() -> None:
    dataset = new_york_like(n_users=400, n_candidates=40, n_facilities=80, seed=33)
    result = IQTSolver().solve(MC2LSProblem(dataset, k=6, tau=0.6))
    print(dataset.describe())
    print(f"portfolio: {sorted(result.selected)}  cinf(G) = {result.objective:.2f}\n")

    print(render_dataset(dataset, width=70, height=20, selected=result.selected))

    print("\nper-site diagnostics:")
    print(f"{'site':>5} {'covered':>8} {'exclusive':>10} {'value':>7} "
          f"{'excl.value':>10} {'avg |F_o|':>9}")
    for report in site_reports(result.table, result.selected):
        print(f"{report.cid:>5} {len(report.covered):>8} {len(report.exclusive):>10} "
              f"{report.value:>7.2f} {report.exclusive_value:>10.2f} "
              f"{report.mean_competition:>9.2f}")

    regret = drop_one_regret(result.table, result.selected)
    weakest = min(regret, key=regret.get)
    print(f"\ndrop-one regret: losing site {weakest} costs only "
          f"{regret[weakest]:.2f} — the divestment candidate.")

    print(f"redundancy index : {redundancy_index(result.table, result.selected):.2%} "
          "of coverage pairs are overlaps")
    print(f"contested share  : {contested_share(result.table, result.selected):.2%} "
          "of captured users are fought over by incumbents")

    print("\nbudget curve (cinf of the greedy prefix):")
    for k, value in marginal_curve(result.table, result.selected):
        bar = "#" * int(value * 2)
        print(f"  k={k}: {value:6.2f} {bar}")


if __name__ == "__main__":
    main()
