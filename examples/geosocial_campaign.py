#!/usr/bin/env python
"""Geo-social store opening — the paper's future-work extension in action.

A fashion brand opens k stores in a clustered city.  Beyond the spatial
MC²LS objective, the brand cares about (a) whether nearby users are
actually interested in its category and (b) word-of-mouth: captured
customers talk to friends, and friendships decay with distance.  This
example compares the pure spatial plan against the geo-social plan and
quantifies the gap under the combined objective.

Run:  python examples/geosocial_campaign.py
"""

from repro import MC2LSProblem
from repro.data import new_york_like
from repro.social import (
    CascadeSampler,
    GeoSocialObjective,
    GeoSocialSolver,
    geo_social_graph,
    random_interest_model,
    simulate_cascade,
)

import numpy as np


def main() -> None:
    dataset = new_york_like(n_users=400, n_candidates=50, n_facilities=100, seed=21)
    print(dataset.describe())

    graph = geo_social_graph(dataset.users, mean_degree=8.0, scale_km=4.0, seed=3)
    print(f"social graph: {len(graph)} users, {graph.n_edges} friendships, "
          f"mean degree {graph.mean_degree():.1f}")

    interests = random_interest_model(
        [u.uid for u in dataset.users],
        [c.fid for c in dataset.candidates],
        n_topics=6,
        concentration=0.4,
        seed=3,
    )

    problem = MC2LSProblem(dataset, k=5, tau=0.6)
    solver = GeoSocialSolver(
        graph=graph, interests=interests, beta=0.3, edge_probability=0.15, seed=4
    )
    result = solver.solve(problem)

    print(f"\nspatial-only plan : {sorted(result.spatial_only)}")
    print(f"geo-social plan   : {sorted(result.selected)}")

    # Score BOTH plans under the full geo-social objective.
    sampler = CascadeSampler(graph, probability=0.15, n_worlds=64, seed=4)
    objective = GeoSocialObjective(
        result.spatial_result.table, interests=interests, sampler=sampler, beta=0.3
    )
    geo_value = objective.value(list(result.selected))
    spatial_value = objective.value(list(result.spatial_only))
    print(f"\ncombined objective (capture x interest + 0.3 x word-of-mouth):")
    print(f"  geo-social plan   : {geo_value:.2f}")
    print(f"  spatial-only plan : {spatial_value:.2f}")
    if spatial_value > 0:
        print(f"  -> geo-social planning adds {100 * (geo_value / spatial_value - 1):.1f}%")

    # What does one plausible launch week look like?  Simulate a cascade
    # from the users the selected stores capture.
    captured = objective.covered(list(result.selected))
    rng = np.random.default_rng(7)
    waves = [len(simulate_cascade(graph, captured, probability=0.15, rng=rng))
             for _ in range(5)]
    print(f"\ncaptured users: {len(captured)}; simulated reach incl. word of mouth: "
          f"{waves} (five runs)")


if __name__ == "__main__":
    main()
