#!/usr/bin/env python
"""Anatomy of the pruning rules — why the IQuad-tree wins.

Walks through the paper's §V machinery on a uniform (California-like)
and a skewed (New-York-like) population:

1. the mMR / η duality that converts the influence threshold into a
   position-count threshold,
2. per-rule pruning power (IS vs IA, NIR vs NIB) on both datasets,
3. the end-to-end effect on solver runtimes.

Run:  python examples/pruning_anatomy.py
"""

from repro import AdaptedKCIFPSolver, BaselineGreedySolver, IQTSolver, MC2LSProblem
from repro.data import california_like, new_york_like
from repro.influence import (
    min_max_radius,
    paper_default_pf,
    position_count_threshold,
)
from repro.pruning import measure_iquadtree_pruning, measure_pinocchio_pruning


def show_duality() -> None:
    pf = paper_default_pf()
    print("mMR / eta duality  (PF(d) = 1 / (1 + e^d), tau = 0.7)")
    print(f"{'r':>4}  {'mMR(0.7, r) km':>15}  {'eta(0.7, PF, mMR)':>18}")
    for r in (2, 5, 10, 20, 40):
        d = min_max_radius(0.7, r, pf)
        eta = position_count_threshold(0.7, pf, d) if d > 0 else float("nan")
        print(f"{r:>4}  {d:>15.3f}  {eta:>18.3f}")
    print("-> eta recovers r exactly: the two thresholds are inverses.\n")


def show_rule_power() -> None:
    pf = paper_default_pf()
    print("pair-level pruning power at tau = 0.7")
    header = f"{'dataset':>9} {'IS conf':>9} {'IA conf':>9} {'NIR pruned':>11} {'NIB pruned':>11}"
    print(header)
    for name, ds in [
        ("C-like", california_like(n_users=500, seed=1)),
        ("N-like", new_york_like(n_users=400, seed=1)),
    ]:
        iq, _ = measure_iquadtree_pruning(
            ds.users, ds.abstract_facilities, 0.7, pf, 2.0, ds.region
        )
        pino = measure_pinocchio_pruning(ds.users, ds.abstract_facilities, 0.7, pf)
        print(
            f"{name:>9} {iq.confirmed_fraction:>9.2%} {pino.confirmed_fraction:>9.2%} "
            f"{iq.pruned_fraction:>11.2%} {pino.pruned_fraction:>11.2%}"
        )
    print("-> user-pruning (IS/NIR) decides most pairs on uniform data;\n"
          "   the facility-pruning rules catch up only under heavy skew.\n")


def show_runtimes() -> None:
    print("end-to-end solver comparison (k = 5, tau = 0.7)")
    for name, ds in [
        ("C-like", california_like(n_users=800, seed=2)),
        ("N-like", new_york_like(n_users=400, seed=2)),
    ]:
        problem = MC2LSProblem(ds, k=5, tau=0.7)
        print(f"  {name}:")
        reference = None
        for solver in [BaselineGreedySolver(), AdaptedKCIFPSolver(), IQTSolver()]:
            result = solver.solve(problem)
            if reference is None:
                reference = result.selected
            assert result.selected == reference
            print(
                f"    {solver.name:<9} {result.total_time * 1e3:>8.1f} ms "
                f"({result.evaluation.total_evaluations} exact probability checks)"
            )


def main() -> None:
    show_duality()
    show_rule_power()
    show_runtimes()


if __name__ == "__main__":
    main()
