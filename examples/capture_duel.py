#!/usr/bin/env python
"""Choice models change the portfolio; a rival erodes it.

Solves one city under each registered capture model — the paper's
evenly-split split, Huff-style shares, maximum-capture under an MNL
choice model, and simulation-based fixed-worlds capture — and shows how
the selected portfolio shifts as the model sharpens (under MNL a second
site next to the first cannibalises its own capture, so the plan
spreads out).

Then plays the two-player best-response round under MNL: a rival chain
picks the best leftover sites, the leader's captured demand erodes, and
the leader re-solves against the rival-aware world.

Run:  python examples/capture_duel.py
"""

from repro import paper_default_pf
from repro.capture import CaptureSpec, best_response_round
from repro.competition import InfluenceTable
from repro.data import new_york_like
from repro.influence import InfluenceEvaluator
from repro.solvers import run_selection
from repro.solvers.base import resolve_all_pairs


def main() -> None:
    # Clustered city: candidate coverage overlaps, so sites contest the
    # same users — exactly the regime where the choice model matters.
    dataset = new_york_like(n_users=400, n_candidates=60, n_facilities=40, seed=7)
    print(dataset.describe())
    pf = paper_default_pf()
    omega_c, f_o = resolve_all_pairs(dataset, InfluenceEvaluator(pf, 0.5))
    table = InfluenceTable.from_mappings(omega_c, f_o)
    cids = sorted(omega_c)

    specs = {
        "evenly-split": CaptureSpec(),
        "huff": CaptureSpec(model="huff"),
        "mnl (beta=4)": CaptureSpec(model="mnl", mnl_beta=4.0),
        "fixed-worlds": CaptureSpec(model="fixed-worlds", mnl_beta=4.0,
                                    worlds=48, world_seed=11),
    }
    print(f"\n{'capture model':>14}  {'objective':>9}  portfolio")
    models = {}
    for label, spec in specs.items():
        models[label] = spec.build(dataset, pf)
        outcome = run_selection(table, cids, 5, capture=models[label])
        print(f"{label:>14}  {outcome.objective:>9.3f}  {sorted(outcome.selected)}")

    print("\nTwo-player round under MNL (rival picks from the leftovers):")
    report = best_response_round(table, cids, 5, models["mnl (beta=4)"])
    rows = [
        ("leader (initial)", report.leader_objective, report.leader_initial),
        ("rival best response", report.rival_objective, report.rival_selected),
        ("leader (eroded)", report.eroded_objective, report.leader_initial),
        ("leader (re-solved)", report.adapted_objective, report.leader_adapted),
    ]
    for label, objective, sites in rows:
        print(f"  {label:<20} {objective:>8.3f}  {sorted(sites)}")
    print(f"  capture erosion: {report.erosion:.3f} "
          f"({report.erosion_fraction:.1%} of the initial objective), "
          f"recovered {report.recovered:.3f} by re-solving")


if __name__ == "__main__":
    main()
