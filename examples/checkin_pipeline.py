#!/usr/bin/env python
"""End-to-end pipeline on SNAP-format check-in data.

Demonstrates the ingestion path the paper uses for its real datasets:
parse a Brightkite/Gowalla-format check-in dump, project it into a local
km-space, carve a metropolitan bounding box, characterise the resulting
population, and solve an MC²LS instance with POI-sampled facilities.

A small bundled sample (``examples/data/sample_checkins.txt``, generated
once with the same venue-revisit behaviour as real check-in data) keeps
the example runnable offline; point ``--path`` at a real SNAP dump
(e.g. ``loc-brightkite_totalCheckins.txt``) to run it at scale.

Run:  python examples/checkin_pipeline.py [--path FILE]
"""

import argparse
from pathlib import Path

import numpy as np

from repro import IQTSolver, MC2LSProblem
from repro.data import compute_stats, load_checkins

SAMPLE_PATH = Path(__file__).parent / "data" / "sample_checkins.txt"


def generate_sample(path: Path, n_users: int = 120, seed: int = 5) -> None:
    """Write a miniature check-in dump around New York City."""
    rng = np.random.default_rng(seed)
    path.parent.mkdir(parents=True, exist_ok=True)
    center = np.array([40.75, -73.95])
    lines = []
    poi_id = 0
    for uid in range(n_users):
        home = center + rng.normal(0, 0.05, size=2)
        n_venues = max(1, int(rng.poisson(3)))
        venues = home + rng.normal(0, 0.02, size=(n_venues, 2))
        venue_ids = [f"poi_{poi_id + i}" for i in range(n_venues)]
        poi_id += n_venues
        prefs = rng.dirichlet(np.full(n_venues, 0.8))
        for visit in range(int(rng.integers(2, 20))):
            which = rng.choice(n_venues, p=prefs)
            lat, lon = venues[which] + rng.normal(0, 0.001, size=2)
            stamp = f"2010-{rng.integers(1, 13):02d}-{rng.integers(1, 29):02d}T12:00:00Z"
            lines.append(f"{uid}\t{stamp}\t{lat:.6f}\t{lon:.6f}\t{venue_ids[which]}")
    path.write_text("\n".join(lines) + "\n")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--path", type=Path, default=SAMPLE_PATH,
                        help="SNAP-format check-in file")
    parser.add_argument("--k", type=int, default=4, help="locations to select")
    args = parser.parse_args()

    if args.path == SAMPLE_PATH and not SAMPLE_PATH.exists():
        print(f"generating bundled sample at {SAMPLE_PATH} ...")
        generate_sample(SAMPLE_PATH)

    data = load_checkins(args.path, min_positions=2)
    print(f"loaded {len(data.users)} users, "
          f"{sum(u.r for u in data.users)} positions, "
          f"{data.pois.shape[0]} distinct POIs")

    n_candidates = min(25, data.pois.shape[0] // 3)
    n_facilities = min(50, data.pois.shape[0] - n_candidates)
    dataset = data.dataset(n_candidates, n_facilities, seed=1, name="checkins")
    stats = compute_stats(dataset)
    print("population statistics:", stats.as_row())

    problem = MC2LSProblem(dataset, k=min(args.k, n_candidates), tau=0.5)
    result = IQTSolver(d_hat=1.0).solve(problem)
    print(f"\nselected sites      : {list(result.selected)}")
    print(f"captured demand     : {result.objective:.2f}")
    print(f"solve wall time     : {result.total_time * 1e3:.1f} ms")
    for site in result.selected:
        covered = result.table.omega_c.get(site, set())
        print(f"  site {site}: influences {len(covered)} users")


if __name__ == "__main__":
    main()
