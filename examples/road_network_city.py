#!/usr/bin/env python
"""Euclidean vs road-network site selection.

Straight-line distance flatters sites across rivers and rail corridors.
This example builds a Manhattan-style grid city with a closed corridor
(dropped road segments), selects store sites under both metrics, and
shows where — and how much — the straight-line model misjudges the
market.

Run:  python examples/road_network_city.py
"""

import numpy as np

from repro import IQTSolver, MC2LSProblem, MovingUser, SpatialDataset, candidate, existing
from repro.competition import cinf_group
from repro.roadnet import grid_network, solve_on_network


def build_city(seed: int = 8, side: float = 12.0) -> SpatialDataset:
    rng = np.random.default_rng(seed)
    users = []
    for uid in range(250):
        home = rng.uniform(1, side - 1, 2)
        n_venues = max(1, int(rng.poisson(3)))
        venues = home + rng.normal(0, 1.2, size=(n_venues, 2))
        prefs = rng.dirichlet(np.full(n_venues, 0.8))
        visits = rng.choice(n_venues, size=int(rng.integers(5, 18)), p=prefs)
        positions = venues[visits] + rng.normal(0, 0.1, size=(len(visits), 2))
        users.append(MovingUser(uid, np.clip(positions, 0, side)))
    cands = [candidate(i, *rng.uniform(1, side - 1, 2)) for i in range(30)]
    facs = [existing(i, *rng.uniform(1, side - 1, 2)) for i in range(40)]
    return SpatialDataset.build(users, facs, cands, name="grid-city")


def main() -> None:
    dataset = build_city()
    print(dataset.describe())

    # A street grid with 25 % of segments closed (river, rail, one-ways).
    network = grid_network(side_km=12, spacing_km=0.75, drop_fraction=0.25, seed=8)
    print(f"road network: {len(network)} intersections, {network.n_edges} segments")

    problem = MC2LSProblem(dataset, k=5, tau=0.5)
    euclid = IQTSolver().solve(problem)
    net = solve_on_network(dataset, network, k=5, tau=0.5)

    print(f"\nEuclidean plan : {sorted(euclid.selected)}  "
          f"(objective {euclid.objective:.2f} under straight-line reach)")
    print(f"network plan   : {sorted(net.selected)}  "
          f"(objective {net.objective:.2f} under road reach)")

    # Judge the Euclidean plan by what it ACTUALLY captures on the roads.
    euclid_on_roads = cinf_group(net.table, list(euclid.selected))
    print(f"\nscored on the road network:")
    print(f"  network plan    : {net.objective:.2f}")
    print(f"  Euclidean plan  : {euclid_on_roads:.2f}")
    if net.objective > euclid_on_roads:
        gap = 100 * (net.objective / max(euclid_on_roads, 1e-9) - 1)
        print(f"  -> ignoring the street grid costs {gap:.1f}% of captured demand")
    overlap = set(euclid.selected) & set(net.selected)
    print(f"\nplans share {len(overlap)}/5 sites; network distances moved "
          f"{5 - len(overlap)} of them.")


if __name__ == "__main__":
    main()
