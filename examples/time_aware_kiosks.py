#!/usr/bin/env python
"""Time-aware kiosk placement: when to open matters as much as where.

Food kiosks pay rent by the hour.  This example labels a skewed city's
check-ins with daily rhythms (commute / lunch / evening peaks), then
selects k kiosks *together with an opening window each* from a shift
menu, and compares the result against an always-open plan and a
time-blind plan forced into a single shift.

Run:  python examples/time_aware_kiosks.py
"""

from repro.data import new_york_like
from repro.temporal import ALL_DAY, TimeAwareMC2LS, TimeWindow, attach_hours


def main() -> None:
    dataset = new_york_like(n_users=300, n_candidates=30, n_facilities=60, seed=17)
    print(dataset.describe())
    timed = attach_hours(dataset.users, seed=17)

    # Hourly rent makes always-open uneconomical, so the menu offers
    # shifts only; the always-open plan is scored separately below.
    shift_menu = [
        TimeWindow(6, 11),   # breakfast
        TimeWindow(11, 15),  # lunch
        TimeWindow(16, 22),  # evening
    ]

    solver = TimeAwareMC2LS(
        timed, dataset.facilities, dataset.candidates,
        windows=shift_menu, k=5, tau=0.5,
    )
    result = solver.solve()

    print("\ntime-aware plan (site, shift):")
    for placement, gain in zip(result.placements, result.gains):
        print(f"  site {placement.cid:>3} open {placement.window}   "
              f"marginal demand {gain:.2f}")
    print(f"total captured demand: {result.objective:.2f}")

    for label, menu in [
        ("always-open plan   ", [ALL_DAY]),
        ("lunch-only plan    ", [TimeWindow(11, 15)]),
    ]:
        alt = TimeAwareMC2LS(
            timed, dataset.facilities, dataset.candidates,
            windows=menu, k=5, tau=0.5,
        ).solve()
        print(f"{label}: {alt.objective:.2f} captured demand")

    print("\nThe shift menu lets each site match its local rhythm — the "
          "time-aware plan can only match or beat any fixed-shift plan.")


if __name__ == "__main__":
    main()
