#!/usr/bin/env python
"""Serving engine: answer repeated what-if queries from a warm cache.

A planning team rarely asks one question.  They sweep k ("what do 3, 5,
8 new stores buy us?"), compare thresholds, and restrict to shortlisted
sites — all against the same population.  The serving engine resolves
the expensive influence table once per (snapshot, PF, τ) and answers
every follow-up from the cheap greedy phase or straight from cache,
while streaming updates republish new snapshots that atomically retire
the stale entries.

Run:  python examples/serving_engine.py
"""

import time

from repro import IQTSolver, MC2LSProblem, SelectionEngine, SelectionQuery
from repro.data import california_like
from repro.streaming import StreamingMC2LS


def main() -> None:
    dataset = california_like(
        n_users=500, n_candidates=30, n_facilities=60, seed=7
    )
    print(f"Instance: {dataset.describe()}")

    with SelectionEngine(dataset, max_workers=2) as engine:
        # --- sweep k: one resolution, many selections -----------------
        print("\nWhat-if sweep (k = 2, 4, 6, 8 at tau = 0.7):")
        for k in (2, 4, 6, 8):
            r = engine.execute(SelectionQuery(k=k))
            print(
                f"  k={k}: cinf(G) = {r.objective:.3f}  "
                f"selected = {list(r.selected)}  "
                f"[prepared cache: {r.stats.prepared_cache}, "
                f"{r.stats.total_seconds * 1e3:.1f} ms]"
            )

        # --- repeated query: served from the result cache -------------
        t0 = time.perf_counter()
        again = engine.execute(SelectionQuery(k=6))
        warm_ms = (time.perf_counter() - t0) * 1e3
        direct = IQTSolver().solve(MC2LSProblem(dataset, k=6, tau=0.7))
        assert again.selected == direct.selected
        assert again.gains == direct.gains
        print(
            f"\nRepeat of k=6 answered from cache in {warm_ms:.2f} ms "
            f"({again.stats.result_cache}); bit-identical to a direct "
            f"{direct.total_time * 1e3:.0f} ms IQT solve."
        )

        # --- candidate shortlist: reuse the same preparation ----------
        shortlist = tuple(c.fid for c in dataset.candidates[:12])
        masked = engine.execute(SelectionQuery(k=4, candidate_ids=shortlist))
        print(
            f"\nShortlist of {len(shortlist)} sites: selected "
            f"{list(masked.selected)} (cinf(G) = {masked.objective:.3f}, "
            f"prepared cache: {masked.stats.prepared_cache})"
        )

        # --- streaming update: republish retires the stale cache ------
        session = StreamingMC2LS.from_dataset(dataset, k=6, tau=0.7)
        for user in dataset.users[::4]:
            session.remove_user(user.uid)
        snap = engine.publish_streaming(session)
        fresh = engine.execute(SelectionQuery(k=6))
        check = IQTSolver().solve(
            MC2LSProblem(session.current_dataset(), k=6, tau=0.7)
        )
        assert fresh.selected == check.selected, "must serve the new population"
        print(
            f"\nAfter {session.events_processed} streaming events, "
            f"republished as snapshot v{snap.version}: k=6 now selects "
            f"{list(fresh.selected)} ({fresh.stats.result_cache} — "
            "the pre-update answer was invalidated)."
        )

        stats = engine.stats()
        print(
            f"\nEngine totals: result cache "
            f"{stats['result_cache']['hits']} hits / "
            f"{stats['result_cache']['misses']} misses, prepared cache "
            f"{stats['prepared_cache']['hits']} hits / "
            f"{stats['prepared_cache']['misses']} misses."
        )


if __name__ == "__main__":
    main()
