#!/usr/bin/env python
"""Capacitated parcel-locker placement.

Parcel lockers saturate: one bank of lockers serves only so many
households.  This example places k locker banks in a clustered city
under a per-site capacity, shows how tightening the capacity pushes the
plan from "dominate the densest cluster" to "spread across clusters",
and reports the realised serving assignment.

Run:  python examples/parcel_lockers.py
"""

from repro import MC2LSProblem
from repro.data import new_york_like
from repro.solvers import CapacitatedGreedySolver, IQTSolver


def main() -> None:
    dataset = new_york_like(n_users=350, n_candidates=40, n_facilities=60, seed=29)
    print(dataset.describe())
    problem = MC2LSProblem(dataset, k=4, tau=0.5)

    uncapped = IQTSolver().solve(problem)
    print(f"\nuncapacitated plan : {sorted(uncapped.selected)} "
          f"(captures {uncapped.objective:.2f})")

    print(f"\n{'capacity':>9}  {'served value':>12}  {'plan':<30} overlap")
    for capacity in (100, 20, 8, 3):
        solver = CapacitatedGreedySolver(capacity=capacity)
        outcome = solver.outcome_details(problem)
        overlap = len(set(outcome.selected) & set(uncapped.selected))
        print(f"{capacity:>9}  {outcome.objective:>12.2f}  "
              f"{str(sorted(outcome.selected)):<30} {overlap}/4")

    solver = CapacitatedGreedySolver(capacity=8)
    outcome = solver.outcome_details(problem)
    print("\nserving assignment at capacity 8:")
    for cid in outcome.selected:
        uids = outcome.assignment[cid]
        print(f"  locker bank {cid:>3}: serves {len(uids)} households")
    print("\nTight capacity moves banks out of the saturated core — the "
          "classic capacitated-facility effect.")


if __name__ == "__main__":
    main()
