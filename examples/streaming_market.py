#!/usr/bin/env python
"""A live market: users churn, the optimal portfolio drifts.

Simulates twelve "weeks" over a skewed city.  Each week a slice of the
population churns out and new users arrive (with a slow drift of the
arrival hot spot).  The streaming session keeps the influence
relationships exact through every event, so the k-site portfolio can be
re-derived instantly — and we can watch when and how the optimal site
set actually changes.

Run:  python examples/streaming_market.py
"""

import numpy as np

from repro.data import new_york_like
from repro.entities import MovingUser
from repro.streaming import StreamingMC2LS


def main() -> None:
    dataset = new_york_like(n_users=350, n_candidates=40, n_facilities=80, seed=13)
    print(dataset.describe())
    session = StreamingMC2LS.from_dataset(dataset, k=5, tau=0.6)

    rng = np.random.default_rng(99)
    region = dataset.region
    next_uid = 10_000
    drift = np.array([region.min_x + 5.0, region.min_y + 5.0])

    print(f"\n{'week':>5}  {'users':>6}  {'cinf(G)':>8}  {'changed':>7}  portfolio")
    previous = None
    for week in range(12):
        # ~8 % churn out...
        present = [uid for uid in range(next_uid) if uid in session]
        for uid in rng.choice(present, size=max(1, len(session) // 12), replace=False):
            session.remove_user(int(uid))
        # ...and a cohort arrives around a slowly drifting hot spot.
        drift += rng.normal(1.2, 0.4, size=2)
        drift = np.clip(drift, [region.min_x + 2, region.min_y + 2],
                        [region.max_x - 2, region.max_y - 2])
        for _ in range(rng.integers(20, 35)):
            r = int(rng.integers(4, 15))
            positions = np.clip(
                rng.normal(drift, 1.5, size=(r, 2)),
                [region.min_x, region.min_y],
                [region.max_x, region.max_y],
            )
            session.add_user(MovingUser(next_uid, positions))
            next_uid += 1

        outcome = session.current_selection()
        portfolio = sorted(outcome.selected)
        changed = "-" if previous is None else str(
            len(set(portfolio) - set(previous))
        )
        print(f"{week + 1:>5}  {len(session):>6}  {outcome.objective:>8.2f}  "
              f"{changed:>7}  {portfolio}")
        previous = portfolio

    print(f"\nprocessed {session.events_processed} events; the portfolio tracked "
          "the demand drift without a single batch re-solve.")


if __name__ == "__main__":
    main()
