#!/usr/bin/env python
"""Quickstart: solve one MC²LS instance end to end.

Generates a small California-like population (uniform users, check-in
style venue revisits), places competitor facilities and candidate sites,
and selects the k = 5 candidates that maximise the competitive collective
influence, comparing the IQuad-tree solver against the brute-force
baseline.

Run:  python examples/quickstart.py
"""

from repro import BaselineGreedySolver, IQTSolver, MC2LSProblem
from repro.data import california_like


def main() -> None:
    dataset = california_like(
        n_users=600, n_candidates=40, n_facilities=80, seed=7
    )
    print(f"Instance: {dataset.describe()}")

    problem = MC2LSProblem(dataset, k=5, tau=0.7)

    iqt = IQTSolver().solve(problem)
    print("\nIQT solver (IQuad-tree pruning):")
    print(f"  selected candidates : {list(iqt.selected)}")
    print(f"  competitive influence cinf(G) = {iqt.objective:.3f}")
    print(f"  per-round marginal gains      = {[round(g, 3) for g in iqt.gains]}")
    print(f"  wall time                     = {iqt.total_time * 1e3:.1f} ms")
    assert iqt.pruning is not None
    print(
        f"  pruning: {iqt.pruning.pruned_fraction:.1%} of pairs eliminated, "
        f"{iqt.pruning.confirmed_fraction:.1%} confirmed without verification"
    )

    baseline = BaselineGreedySolver().solve(problem)
    print("\nBaseline solver (exhaustive):")
    print(f"  selected candidates : {list(baseline.selected)}")
    print(f"  wall time           = {baseline.total_time * 1e3:.1f} ms")

    assert baseline.selected == iqt.selected, "solvers must agree"
    speedup = baseline.total_time / iqt.total_time
    print(f"\nIdentical selections; IQT is {speedup:.1f}x faster here.")


if __name__ == "__main__":
    main()
