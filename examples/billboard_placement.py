#!/usr/bin/env python
"""Billboard placement over commuter trajectories.

The CLS literature the paper builds on (Zhang et al., KDD'18/'20) selects
billboard sites that collectively reach the most commuters.  This example
synthesises home→work commuters whose recorded positions trace their
daily routes, an incumbent advertiser's existing billboards, and a
candidate pool along the arterials — then sizes the budget: how does the
captured audience grow with k, and when does a bigger budget stop paying?

Run:  python examples/billboard_placement.py
"""

import numpy as np

from repro import IQTSolver, MC2LSProblem, MovingUser, SpatialDataset, candidate, existing


def commuter(uid: int, rng: np.random.Generator, side: float) -> MovingUser:
    """A commuter with positions sampled along a home→work corridor."""
    home = rng.uniform(0.1 * side, 0.9 * side, size=2)
    work = rng.uniform(0.1 * side, 0.9 * side, size=2)
    n_pings = int(rng.integers(8, 25))
    # Positions concentrate near the endpoints (dwell time) with the rest
    # spread along the commute path.
    t = np.clip(rng.beta(0.4, 0.4, size=n_pings), 0.0, 1.0)
    points = home[None, :] + t[:, None] * (work - home)[None, :]
    points += rng.normal(0.0, 0.3, size=points.shape)  # GPS noise / detours
    return MovingUser(uid, np.clip(points, 0.0, side))


def build_city(seed: int = 3, side: float = 30.0) -> SpatialDataset:
    rng = np.random.default_rng(seed)
    users = [commuter(uid, rng, side) for uid in range(400)]
    # Arterial grid: candidate billboards sit along major roads.
    arterials = np.linspace(0.15 * side, 0.85 * side, 5)
    candidates = []
    fid = 0
    for a in arterials:
        for pos in np.linspace(0.1 * side, 0.9 * side, 8):
            jitter = rng.normal(0, 0.2, size=2)
            if fid % 2 == 0:
                candidates.append(candidate(fid, a + jitter[0], pos + jitter[1]))
            else:
                candidates.append(candidate(fid, pos + jitter[0], a + jitter[1]))
            fid += 1
    # The incumbent advertiser already covers some prime spots.
    incumbents = [
        existing(i, *rng.uniform(0.2 * side, 0.8 * side, size=2)) for i in range(30)
    ]
    return SpatialDataset.build(users, incumbents, candidates, name="commuter-city")


def main() -> None:
    dataset = build_city()
    print(dataset.describe())
    print(f"candidate billboards: {len(dataset.candidates)}; incumbent boards: "
          f"{len(dataset.facilities)}")

    print("\nbudget sizing — captured audience vs k (evenly-split shares):")
    print(f"{'k':>3}  {'cinf(G)':>9}  {'marginal gain':>13}  selected this round")
    solver = IQTSolver(d_hat=1.5)
    result = solver.solve(MC2LSProblem(dataset, k=12, tau=0.6))
    running = 0.0
    for round_no, (site, gain) in enumerate(zip(result.selected, result.gains), 1):
        running += gain
        print(f"{round_no:>3}  {running:>9.2f}  {gain:>13.3f}  billboard #{site}")

    # Where does the next billboard stop paying for itself?  Diminishing
    # returns are guaranteed (submodularity) — find the knee at 20 % of the
    # first gain.
    threshold = result.gains[0] * 0.2
    knee = next(
        (i + 1 for i, g in enumerate(result.gains) if g < threshold),
        len(result.gains),
    )
    print(
        f"\nmarginal gain falls below 20% of the first site's gain at k = {knee}; "
        "beyond that the budget is better spent elsewhere."
    )


if __name__ == "__main__":
    main()
