#!/usr/bin/env python
"""Restaurant-chain expansion in competition — the paper's Example 1.

Part 1 reconstructs the motivating toy instance of Fig. 1 exactly: three
candidate sites, four moving users and two existing competitor
restaurants, showing how the competitors flip the optimal pair from a
tie between {c1, c2} and {c1, c3} to a clear win for {c1, c3}.

Part 2 scales the same story up: a synthetic city with clustered
residents and an incumbent chain, where we compare the expansion plan a
competition-blind model would pick against the competition-aware MC²LS
plan.

Run:  python examples/restaurant_chain.py
"""

import numpy as np

from repro import MC2LSProblem, IQTSolver, cinf_group
from repro.competition import InfluenceTable
from repro.data import new_york_like
from repro.solvers import greedy_select


def paper_example() -> None:
    """Fig. 1 / Examples 1, 3 and 4, reproduced from its influence sets."""
    print("=" * 64)
    print("Part 1 — the paper's Fig. 1 toy instance")
    print("=" * 64)
    # Influence relationships as stated in Example 1:
    #   c1 -> {o1, o2}, c2 -> {o2, o4}, c3 -> {o1, o3};
    #   competitors f1 -> {o1, o2}, f2 -> {o2, o4}.
    table = InfluenceTable.from_mappings(
        omega_c={1: {1, 2}, 2: {2, 4}, 3: {1, 3}},
        f_o={1: {1}, 2: {1, 2}, 3: set(), 4: {2}},
    )
    no_competition = InfluenceTable.from_mappings(
        omega_c=table.omega_c, f_o={uid: set() for uid in (1, 2, 3, 4)}
    )

    for label, t in [("without competitors", no_competition), ("with competitors", table)]:
        v12 = cinf_group(t, [1, 2])
        v13 = cinf_group(t, [1, 3])
        print(f"\n{label}:")
        print(f"  cinf({{c1, c2}}) = {v12:.4f}")
        print(f"  cinf({{c1, c3}}) = {v13:.4f}")
    print(
        "\nCompetition breaks the tie: c3 monopolises o3 and shores up o1, "
        "so {c1, c3} wins (Example 3: 11/6 > 4/3)."
    )
    outcome = greedy_select(table, [1, 2, 3], k=2)
    print(f"Greedy selection order: {list(outcome.selected)} (Example 4 picks c3 then c2)")


def city_expansion() -> None:
    print()
    print("=" * 64)
    print("Part 2 — expanding into a city with an incumbent chain")
    print("=" * 64)
    dataset = new_york_like(n_users=500, n_candidates=60, n_facilities=120, seed=11)
    print(dataset.describe())

    # Competition-aware plan (MC2LS).
    problem = MC2LSProblem(dataset, k=6, tau=0.7)
    aware = IQTSolver().solve(problem)

    # Competition-blind plan: same instance with the incumbents removed
    # (this is what a traditional CLS model like k-CIFP optimises).
    blind_dataset = dataset.with_facilities([])
    blind = IQTSolver().solve(MC2LSProblem(blind_dataset, k=6, tau=0.7))

    # Evaluate BOTH plans under the true competitive market.
    aware_value = cinf_group(aware.table, aware.selected)
    blind_value = cinf_group(aware.table, blind.selected)

    print(f"\ncompetition-aware plan : sites {sorted(aware.selected)}")
    print(f"competition-blind plan : sites {sorted(blind.selected)}")
    print(f"\nmarket share captured (evenly-split model, with incumbents):")
    print(f"  aware plan : {aware_value:.2f} users' worth of demand")
    print(f"  blind plan : {blind_value:.2f} users' worth of demand")
    if aware_value > blind_value:
        lift = (aware_value - blind_value) / blind_value * 100
        print(f"  -> modelling the competitors lifts captured demand by {lift:.1f}%")
    else:
        print("  -> plans coincide on this instance (incumbents spatially neutral)")


def main() -> None:
    np.random.seed(0)
    paper_example()
    city_expansion()


if __name__ == "__main__":
    main()
